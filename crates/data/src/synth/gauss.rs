//! The GaussMixture workload of §4.1.
//!
//! > "we sampled k centers from a 15-dimensional spherical Gaussian
//! > distribution with mean at the origin and variance R ∈ {1, 10, 100}.
//! > We then added points from Gaussian distributions of unit variance
//! > around each center. [...] The number of sampled points from this
//! > mixture of Gaussians is n = 10,000."
//!
//! With unit-variance clusters in `d = 15` dimensions, the optimal
//! clustering cost is ≈ `n · d` (each point contributes ≈ `d` in expected
//! squared distance to its component center), i.e. ≈ 1.5 × 10⁵ for the
//! paper's parameters — exactly the scale of the "14 × 10⁴" entries in
//! Table 1. The separation between components grows with `R`, which is what
//! makes `Random` initialization collapse for `R = 100` while D²-weighted
//! seeding keeps working.

use crate::dataset::{Dataset, SyntheticDataset};
use crate::error::DataError;
use crate::matrix::PointMatrix;
use kmeans_util::Rng;

/// Generator for the paper's synthetic Gaussian-mixture workload.
///
/// Defaults match §4.1: `dim = 15`, `n = 10 000`, unit cluster variance,
/// equal component weights.
///
/// ```
/// use kmeans_data::synth::GaussMixture;
/// let synth = GaussMixture::new(50).center_variance(10.0).generate(42).unwrap();
/// assert_eq!(synth.dataset.len(), 10_000);
/// assert_eq!(synth.dataset.dim(), 15);
/// assert_eq!(synth.true_centers.len(), 50);
/// ```
#[derive(Clone, Debug)]
pub struct GaussMixture {
    k: usize,
    dim: usize,
    n: usize,
    center_variance: f64,
    cluster_variance: f64,
}

impl GaussMixture {
    /// Creates a generator for a mixture of `k` spherical Gaussians with the
    /// paper's defaults.
    pub fn new(k: usize) -> Self {
        GaussMixture {
            k,
            dim: 15,
            n: 10_000,
            center_variance: 1.0,
            cluster_variance: 1.0,
        }
    }

    /// Sets the dimensionality (paper: 15).
    pub fn dim(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }

    /// Sets the number of sampled points (paper: 10 000).
    pub fn points(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Sets the variance `R` of the center distribution (paper: 1, 10, 100).
    pub fn center_variance(mut self, r: f64) -> Self {
        self.center_variance = r;
        self
    }

    /// Sets the within-cluster variance (paper: 1).
    pub fn cluster_variance(mut self, v: f64) -> Self {
        self.cluster_variance = v;
        self
    }

    /// Generates the dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Result<SyntheticDataset, DataError> {
        if self.k == 0 {
            return Err(DataError::InvalidParam("k must be positive".into()));
        }
        if self.dim == 0 {
            return Err(DataError::InvalidParam("dim must be positive".into()));
        }
        if self.n == 0 {
            return Err(DataError::InvalidParam("n must be positive".into()));
        }
        if self.center_variance <= 0.0 || self.cluster_variance < 0.0 {
            return Err(DataError::InvalidParam("variances must be positive".into()));
        }

        // Component centers: N(0, R·I)  ⇒  per-coordinate std = sqrt(R).
        let center_std = self.center_variance.sqrt();
        let mut center_rng = Rng::derive(seed, &[0]);
        let mut centers = PointMatrix::with_capacity(self.dim, self.k);
        let mut buf = vec![0.0; self.dim];
        for _ in 0..self.k {
            center_rng.fill_normal(&mut buf);
            for v in &mut buf {
                *v *= center_std;
            }
            centers.push(&buf)?;
        }

        // Points: equal-weight mixture, unit-variance (by default) spherical
        // Gaussian around the chosen component center.
        let cluster_std = self.cluster_variance.sqrt();
        let mut point_rng = Rng::derive(seed, &[1]);
        let mut points = PointMatrix::with_capacity(self.dim, self.n);
        let mut labels = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            let comp = point_rng.range_usize(self.k);
            labels.push(comp as u32);
            let c = centers.row(comp);
            for (v, &cj) in buf.iter_mut().zip(c) {
                *v = cj; // reset from previous iteration, then add noise below
            }
            for v in buf.iter_mut() {
                *v += cluster_std * point_rng.normal();
            }
            points.push(&buf)?;
        }

        let name = format!(
            "gauss-mixture(k={},d={},n={},R={})",
            self.k, self.dim, self.n, self.center_variance
        );
        Ok(SyntheticDataset {
            dataset: Dataset::with_labels(name, points, labels)?,
            true_centers: centers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_parameters() {
        let s = GaussMixture::new(5).dim(3).points(200).generate(7).unwrap();
        assert_eq!(s.dataset.len(), 200);
        assert_eq!(s.dataset.dim(), 3);
        assert_eq!(s.true_centers.len(), 5);
        assert_eq!(s.true_centers.dim(), 3);
        assert_eq!(s.dataset.labels().unwrap().len(), 200);
        assert!(s.dataset.labels().unwrap().iter().all(|&l| l < 5));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GaussMixture::new(3).points(50).generate(1).unwrap();
        let b = GaussMixture::new(3).points(50).generate(1).unwrap();
        assert_eq!(a.dataset.points(), b.dataset.points());
        assert_eq!(a.true_centers, b.true_centers);
        let c = GaussMixture::new(3).points(50).generate(2).unwrap();
        assert_ne!(a.dataset.points(), c.dataset.points());
    }

    #[test]
    fn center_spread_scales_with_r() {
        // Mean squared center norm should be ≈ d·R.
        for r in [1.0, 100.0] {
            let s = GaussMixture::new(200)
                .center_variance(r)
                .generate(3)
                .unwrap();
            let msq: f64 = s
                .true_centers
                .rows()
                .map(|c| c.iter().map(|v| v * v).sum::<f64>())
                .sum::<f64>()
                / 200.0;
            let expected = 15.0 * r;
            assert!(
                (msq - expected).abs() < 0.2 * expected,
                "R={r}: mean sq norm {msq}, expected {expected}"
            );
        }
    }

    #[test]
    fn points_cluster_around_their_center() {
        let s = GaussMixture::new(4)
            .dim(10)
            .points(4000)
            .center_variance(400.0) // well-separated
            .generate(11)
            .unwrap();
        let labels = s.dataset.labels().unwrap();
        // Average squared distance of each point to its own component
        // center should be ≈ dim (unit variance per coordinate).
        let mut total = 0.0;
        for (i, row) in s.dataset.points().rows().enumerate() {
            let c = s.true_centers.row(labels[i] as usize);
            total += row
                .iter()
                .zip(c)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
        }
        let avg = total / 4000.0;
        assert!((avg - 10.0).abs() < 1.0, "avg within-cluster sq dist {avg}");
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(GaussMixture::new(0).generate(0).is_err());
        assert!(GaussMixture::new(2).dim(0).generate(0).is_err());
        assert!(GaussMixture::new(2).points(0).generate(0).is_err());
        assert!(GaussMixture::new(2)
            .center_variance(0.0)
            .generate(0)
            .is_err());
        assert!(GaussMixture::new(2)
            .cluster_variance(-1.0)
            .generate(0)
            .is_err());
    }

    #[test]
    fn zero_cluster_variance_puts_points_on_centers() {
        let s = GaussMixture::new(2)
            .dim(2)
            .points(20)
            .cluster_variance(0.0)
            .generate(5)
            .unwrap();
        let labels = s.dataset.labels().unwrap();
        for (i, row) in s.dataset.points().rows().enumerate() {
            assert_eq!(row, s.true_centers.row(labels[i] as usize));
        }
    }
}
