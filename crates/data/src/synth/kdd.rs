//! A statistical stand-in for the **KDDCup1999** network-intrusion dataset
//! (Tables 3–5 and Figure 5.1 of the paper).
//!
//! The real dataset is 4 898 431 connection records × 42 attributes (the
//! paper uses 4.8 M points and a 10 % sample for Figure 5.1). Its structure
//! is extreme and well documented:
//!
//! * **Massive class imbalance** — two DoS attacks (`smurf` ~57 %,
//!   `neptune` ~22 %) plus `normal` traffic (~19 %) cover >98 % of rows;
//!   the remaining ~20 attack types share ~2 %.
//! * **Wildly mixed feature scales** — byte counters reach 10⁶–10⁹ while
//!   rates live in `[0, 1]` and flags in `{0, 1}`.
//! * **Far-out rare clusters** — several rare attack types (e.g.
//!   `warezmaster` file transfers) sit at byte-scale distances of 10⁵–10⁷
//!   from the dominant mass.
//!
//! These three properties are what produce the paper's Table 3: `Random`
//! seeding picks k points that are (with overwhelming probability) all from
//! the dominant clusters, stranding the rare far-out clusters and paying
//! their squared distance — a cost ~10⁶–10⁷× worse than D²-weighted
//! seeding. The generator reproduces exactly those properties at any `n`,
//! so that scaled-down runs preserve the paper's win/loss ordering.
//!
//! Cluster profiles are derived from a *fixed* internal seed (one canonical
//! dataset family, as with the real KDD cup file); the user-facing seed
//! varies only the sampled points.

use crate::dataset::{Dataset, SyntheticDataset};
use crate::error::DataError;
use crate::matrix::PointMatrix;
use kmeans_util::sampling::AliasSampler;
use kmeans_util::Rng;

/// Dimensionality of KDDCup1999 as used by the paper.
pub const KDD_DIM: usize = 42;

/// Number of points in the full dataset ("4.8M points", §4.1).
pub const KDD_FULL_N: usize = 4_800_000;

/// Internal seed fixing the cluster profiles (the "dataset identity").
const PROFILE_SEED: u64 = 0x07DD_1999;

/// Number of rare attack profiles beyond the three dominant classes.
const N_RARE: usize = 20;

// Feature-block layout (mirrors the real attribute groups):
//   0        duration (seconds)
//   1..3     src_bytes, dst_bytes            — heavy-tailed, huge scale
//   3..9     six binary flags
//   9..15    six small misc counts
//   15..17   count, srv_count (0..511)
//   17..25   eight connection rates in [0,1]
//   25..27   dst_host_count, dst_host_srv_count (0..255)
//   27..35   eight dst_host rates in [0,1]
//   35..42   seven rare counters (mostly zero)
const FLAGS: std::ops::Range<usize> = 3..9;
const SMALL_COUNTS: std::ops::Range<usize> = 9..15;
const WINDOW_COUNTS: std::ops::Range<usize> = 15..17;
const RATES: std::ops::Range<usize> = 17..25;
const HOST_COUNTS: std::ops::Range<usize> = 25..27;
const HOST_RATES: std::ops::Range<usize> = 27..35;
const RARE_COUNTS: std::ops::Range<usize> = 35..42;

/// Generation parameters of one traffic class.
#[derive(Clone, Debug)]
struct Profile {
    /// Mixture weight.
    weight: f64,
    /// duration: (mean, zero-inflation probability).
    duration: (f64, f64),
    /// (log-mean, log-sigma) for src_bytes / dst_bytes; log-mean of 0
    /// encodes an all-zero byte column (e.g. SYN floods carry no payload).
    bytes: [(f64, f64); 2],
    /// Probability each flag is set.
    flags: [f64; 6],
    /// Mean of each small count (Poisson-ish via rounded exponential).
    small_counts: [f64; 6],
    /// (mean, std) of the two sliding-window counts.
    window_counts: [(f64, f64); 2],
    /// (mean, std) of the eight rates, clamped to [0,1].
    rates: [(f64, f64); 8],
    /// (mean, std) of the two host counts.
    host_counts: [(f64, f64); 2],
    /// (mean, std) of the eight host rates.
    host_rates: [(f64, f64); 8],
    /// Mean of the seven rare counters.
    rare_counts: [f64; 7],
}

impl Profile {
    /// The `smurf`-like ICMP flood: enormous population, fixed small
    /// payload, saturated same-service rates. Very tight cluster.
    fn smurf() -> Profile {
        Profile {
            weight: 0.57,
            duration: (0.0, 1.0),
            bytes: [(1032f64.ln(), 0.02), (0.0, 0.0)],
            flags: [0.0; 6],
            small_counts: [0.0; 6],
            window_counts: [(508.0, 6.0), (508.0, 6.0)],
            rates: [
                (0.0, 0.01),
                (0.0, 0.01),
                (0.0, 0.01),
                (0.0, 0.01),
                (1.0, 0.01),
                (0.0, 0.01),
                (0.0, 0.01),
                (0.0, 0.01),
            ],
            host_counts: [(255.0, 2.0), (255.0, 2.0)],
            host_rates: [
                (1.0, 0.01),
                (0.0, 0.01),
                (1.0, 0.02),
                (0.0, 0.01),
                (0.0, 0.01),
                (0.0, 0.01),
                (0.0, 0.01),
                (0.0, 0.01),
            ],
            rare_counts: [0.0; 7],
        }
    }

    /// The `neptune`-like SYN flood: zero payload, saturated error rates.
    fn neptune() -> Profile {
        Profile {
            weight: 0.217,
            duration: (0.0, 1.0),
            bytes: [(0.0, 0.0), (0.0, 0.0)],
            flags: [0.05, 0.0, 0.0, 0.0, 0.0, 0.0],
            small_counts: [0.0; 6],
            window_counts: [(180.0, 60.0), (12.0, 8.0)],
            rates: [
                (1.0, 0.02),
                (1.0, 0.02),
                (0.0, 0.01),
                (0.0, 0.01),
                (0.06, 0.03),
                (0.06, 0.03),
                (0.0, 0.01),
                (0.0, 0.01),
            ],
            host_counts: [(255.0, 2.0), (18.0, 10.0)],
            host_rates: [
                (0.07, 0.03),
                (0.06, 0.03),
                (0.0, 0.01),
                (0.0, 0.01),
                (1.0, 0.02),
                (1.0, 0.02),
                (0.0, 0.01),
                (0.0, 0.01),
            ],
            rare_counts: [0.0; 7],
        }
    }

    /// Ordinary traffic: moderate log-normal payloads with real spread —
    /// this class carries most of the *within*-cluster potential.
    fn normal() -> Profile {
        Profile {
            weight: 0.19,
            duration: (25.0, 0.7),
            bytes: [(6.0, 1.0), (8.0, 1.1)],
            flags: [0.0, 0.7, 0.01, 0.01, 0.05, 0.0],
            small_counts: [0.0, 0.0, 0.3, 0.02, 0.02, 0.05],
            window_counts: [(9.0, 12.0), (11.0, 14.0)],
            rates: [
                (0.02, 0.05),
                (0.02, 0.05),
                (0.05, 0.1),
                (0.05, 0.1),
                (0.85, 0.2),
                (0.06, 0.1),
                (0.1, 0.15),
                (0.02, 0.05),
            ],
            host_counts: [(150.0, 90.0), (180.0, 80.0)],
            host_rates: [
                (0.75, 0.25),
                (0.03, 0.06),
                (0.1, 0.15),
                (0.03, 0.08),
                (0.02, 0.05),
                (0.02, 0.05),
                (0.05, 0.1),
                (0.05, 0.1),
            ],
            rare_counts: [0.02, 0.01, 0.0, 0.0, 0.0, 0.0, 0.0],
        }
    }

    /// A rare attack class. Each gets a distinct far-out byte signature
    /// (10⁴–10⁷ scale) and its own rate/flag fingerprint, placed
    /// deterministically from the fixed profile seed.
    fn rare(index: usize, weight: f64) -> Profile {
        let mut rng = Rng::derive(PROFILE_SEED, &[10 + index as u64]);
        // Byte signatures: log-mean uniform in ln(1.6e5)..ln(1e7), above
        // the normal-traffic tail, with *near-deterministic* magnitudes —
        // real attack tools transfer nearly fixed payloads, which is what
        // makes the rare clusters tight and the paper's Random-vs-D² gap
        // enormous. Some attacks are src-heavy (exfiltration), some
        // dst-heavy (downloads).
        let src_heavy = rng.bernoulli(0.5);
        let big = (rng.uniform(12.0, 16.1), rng.uniform(0.02, 0.15));
        let small = if rng.bernoulli(0.4) {
            (0.0, 0.0)
        } else {
            (rng.uniform(3.0, 6.0), rng.uniform(0.05, 0.3))
        };
        let bytes = if src_heavy {
            [big, small]
        } else {
            [small, big]
        };
        let mut flags = [0.0; 6];
        for f in &mut flags {
            *f = if rng.bernoulli(0.25) {
                rng.uniform(0.5, 1.0)
            } else {
                0.0
            };
        }
        let mut small_counts = [0.0; 6];
        for c in &mut small_counts {
            *c = if rng.bernoulli(0.3) {
                rng.uniform(0.5, 4.0)
            } else {
                0.0
            };
        }
        let mut rates = [(0.0, 0.02); 8];
        for r in &mut rates {
            *r = (rng.uniform(0.0, 1.0), rng.uniform(0.02, 0.15));
        }
        let mut host_rates = [(0.0, 0.02); 8];
        for r in &mut host_rates {
            *r = (rng.uniform(0.0, 1.0), rng.uniform(0.02, 0.15));
        }
        let mut rare_counts = [0.0; 7];
        for c in &mut rare_counts {
            *c = if rng.bernoulli(0.25) {
                rng.uniform(0.5, 3.0)
            } else {
                0.0
            };
        }
        Profile {
            weight,
            duration: (rng.uniform(0.0, 1000.0), rng.uniform(0.2, 0.9)),
            bytes,
            flags,
            small_counts,
            window_counts: [
                (rng.uniform(1.0, 40.0), rng.uniform(1.0, 10.0)),
                (rng.uniform(1.0, 40.0), rng.uniform(1.0, 10.0)),
            ],
            rates,
            host_counts: [
                (rng.uniform(1.0, 255.0), rng.uniform(1.0, 40.0)),
                (rng.uniform(1.0, 255.0), rng.uniform(1.0, 40.0)),
            ],
            host_rates,
            rare_counts,
        }
    }

    /// Mean vector of the profile (ground-truth center).
    fn mean(&self) -> Vec<f64> {
        let mut m = vec![0.0; KDD_DIM];
        m[0] = self.duration.0 * (1.0 - self.duration.1);
        for (b, &(mu, sigma)) in self.bytes.iter().enumerate() {
            m[1 + b] = if mu == 0.0 {
                0.0
            } else {
                (mu + 0.5 * sigma * sigma).exp()
            };
        }
        m[FLAGS].copy_from_slice(&self.flags);
        m[SMALL_COUNTS].copy_from_slice(&self.small_counts);
        for (j, &(mean, _)) in self.window_counts.iter().enumerate() {
            m[WINDOW_COUNTS.start + j] = mean;
        }
        for (j, &(mean, _)) in self.rates.iter().enumerate() {
            m[RATES.start + j] = mean.clamp(0.0, 1.0);
        }
        for (j, &(mean, _)) in self.host_counts.iter().enumerate() {
            m[HOST_COUNTS.start + j] = mean;
        }
        for (j, &(mean, _)) in self.host_rates.iter().enumerate() {
            m[HOST_RATES.start + j] = mean.clamp(0.0, 1.0);
        }
        m[RARE_COUNTS].copy_from_slice(&self.rare_counts);
        m
    }

    /// Samples one record into `row`.
    fn sample(&self, row: &mut [f64], rng: &mut Rng) {
        row[0] = if rng.bernoulli(self.duration.1) {
            0.0
        } else {
            rng.exponential(1.0 / self.duration.0.max(1e-9))
        };
        for (b, &(mu, sigma)) in self.bytes.iter().enumerate() {
            row[1 + b] = if mu == 0.0 {
                0.0
            } else {
                rng.lognormal(mu, sigma).round()
            };
        }
        for (j, &p) in self.flags.iter().enumerate() {
            row[FLAGS.start + j] = f64::from(rng.bernoulli(p));
        }
        for (j, &mean) in self.small_counts.iter().enumerate() {
            row[SMALL_COUNTS.start + j] = if mean > 0.0 {
                rng.exponential(1.0 / mean).round()
            } else {
                0.0
            };
        }
        for (j, &(mean, std)) in self.window_counts.iter().enumerate() {
            row[WINDOW_COUNTS.start + j] = rng.normal_with(mean, std).clamp(0.0, 511.0).round();
        }
        for (j, &(mean, std)) in self.rates.iter().enumerate() {
            row[RATES.start + j] = rng.normal_with(mean, std).clamp(0.0, 1.0);
        }
        for (j, &(mean, std)) in self.host_counts.iter().enumerate() {
            row[HOST_COUNTS.start + j] = rng.normal_with(mean, std).clamp(0.0, 255.0).round();
        }
        for (j, &(mean, std)) in self.host_rates.iter().enumerate() {
            row[HOST_RATES.start + j] = rng.normal_with(mean, std).clamp(0.0, 1.0);
        }
        for (j, &mean) in self.rare_counts.iter().enumerate() {
            row[RARE_COUNTS.start + j] = if mean > 0.0 {
                rng.exponential(1.0 / mean).round()
            } else {
                0.0
            };
        }
    }
}

/// Builds the canonical 23 traffic-class profiles.
fn build_profiles() -> Vec<Profile> {
    let mut profiles = vec![Profile::smurf(), Profile::neptune(), Profile::normal()];
    // Remaining mass, split across rare attacks by a power law (the real
    // class histogram spans 4 orders of magnitude below the top three).
    let rare_total = 1.0 - profiles.iter().map(|p| p.weight).sum::<f64>();
    let raw: Vec<f64> = (0..N_RARE)
        .map(|i| 1.0 / ((i + 2) as f64).powf(1.6))
        .collect();
    let raw_sum: f64 = raw.iter().sum();
    for (i, r) in raw.into_iter().enumerate() {
        profiles.push(Profile::rare(i, rare_total * r / raw_sum));
    }
    profiles
}

/// Generator for the KDDCup1999 stand-in.
///
/// ```
/// use kmeans_data::synth::{KddLike, KDD_DIM};
/// let synth = KddLike::new(10_000).generate(42).unwrap();
/// assert_eq!(synth.dataset.len(), 10_000);
/// assert_eq!(synth.dataset.dim(), KDD_DIM);
/// assert_eq!(synth.true_centers.len(), 23);
/// ```
#[derive(Clone, Debug)]
pub struct KddLike {
    n: usize,
}

impl KddLike {
    /// Creates a generator producing `n` records (paper: 4.8 M; use
    /// [`KddLike::full`] for that).
    pub fn new(n: usize) -> Self {
        KddLike { n }
    }

    /// The paper-scale dataset: 4.8 M records.
    pub fn full() -> Self {
        KddLike { n: KDD_FULL_N }
    }

    /// Generates the dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Result<SyntheticDataset, DataError> {
        if self.n == 0 {
            return Err(DataError::InvalidParam("n must be positive".into()));
        }
        let profiles = build_profiles();
        let weights: Vec<f64> = profiles.iter().map(|p| p.weight).collect();
        let class_sampler = AliasSampler::new(&weights)
            .ok_or_else(|| DataError::InvalidParam("degenerate class weights".into()))?;

        let mut rng = Rng::derive(seed, &[3]);
        let mut points = PointMatrix::with_capacity(KDD_DIM, self.n);
        let mut labels = Vec::with_capacity(self.n);
        let mut row = vec![0.0; KDD_DIM];
        for _ in 0..self.n {
            let class = class_sampler.sample(&mut rng);
            profiles[class].sample(&mut row, &mut rng);
            points.push(&row)?;
            labels.push(class as u32);
        }

        let mut centers = PointMatrix::with_capacity(KDD_DIM, profiles.len());
        for p in &profiles {
            centers.push(&p.mean())?;
        }

        let name = format!("kdd-like(n={},d={KDD_DIM})", self.n);
        Ok(SyntheticDataset {
            dataset: Dataset::with_labels(name, points, labels)?,
            true_centers: centers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let a = KddLike::new(5_000).generate(1).unwrap();
        assert_eq!(a.dataset.len(), 5_000);
        assert_eq!(a.dataset.dim(), 42);
        assert_eq!(a.true_centers.len(), 23);
        let b = KddLike::new(5_000).generate(1).unwrap();
        assert_eq!(a.dataset.points(), b.dataset.points());
        let c = KddLike::new(5_000).generate(2).unwrap();
        assert_ne!(a.dataset.points(), c.dataset.points());
    }

    #[test]
    fn class_histogram_matches_weights() {
        let s = KddLike::new(100_000).generate(2).unwrap();
        let labels = s.dataset.labels().unwrap();
        let mut counts = [0usize; 23];
        for &l in labels {
            counts[l as usize] += 1;
        }
        let frac = |i: usize| counts[i] as f64 / labels.len() as f64;
        assert!((frac(0) - 0.57).abs() < 0.01, "smurf {}", frac(0));
        assert!((frac(1) - 0.217).abs() < 0.01, "neptune {}", frac(1));
        assert!((frac(2) - 0.19).abs() < 0.01, "normal {}", frac(2));
        // Rare classes exist but are collectively small.
        let rare: f64 = (3..23).map(frac).sum();
        assert!(rare < 0.035, "rare mass {rare}");
        assert!(counts[3..].iter().any(|&c| c > 0), "no rare points at all");
    }

    #[test]
    fn feature_ranges_are_respected() {
        let s = KddLike::new(20_000).generate(3).unwrap();
        for row in s.dataset.points().rows() {
            assert!(row[0] >= 0.0, "negative duration");
            assert!(row[1] >= 0.0 && row[2] >= 0.0, "negative bytes");
            for &f in &row[FLAGS] {
                assert!(f == 0.0 || f == 1.0, "non-binary flag {f}");
            }
            for &r in &row[RATES] {
                assert!((0.0..=1.0).contains(&r), "rate out of range {r}");
            }
            for &r in &row[HOST_RATES] {
                assert!((0.0..=1.0).contains(&r), "host rate out of range {r}");
            }
            for &c in &row[WINDOW_COUNTS] {
                assert!((0.0..=511.0).contains(&c));
            }
            for &c in &row[HOST_COUNTS] {
                assert!((0.0..=255.0).contains(&c));
            }
        }
    }

    #[test]
    fn rare_clusters_are_far_out() {
        // The substitution argument: at least a few rare-class centers must
        // sit at byte-scale (≥ 1e4) distance from all three dominant
        // centers, so that Random seeding strands them.
        let s = KddLike::new(1_000).generate(4).unwrap();
        let centers = &s.true_centers;
        let mut far = 0;
        for i in 3..centers.len() {
            let min_d2 = (0..3)
                .map(|j| {
                    centers
                        .row(i)
                        .iter()
                        .zip(centers.row(j))
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                })
                .fold(f64::INFINITY, f64::min);
            if min_d2 > 1e8 {
                far += 1;
            }
        }
        assert!(far >= 5, "only {far} rare clusters are far out");
    }

    #[test]
    fn dominant_clusters_are_tight_relative_to_separation() {
        let s = KddLike::new(50_000).generate(5).unwrap();
        let labels = s.dataset.labels().unwrap();
        // Mean squared distance of smurf points to the smurf center must be
        // tiny compared with the smurf→rare-cluster separations above.
        let smurf_center = s.true_centers.row(0).to_vec();
        let mut total = 0.0;
        let mut count = 0usize;
        for (i, row) in s.dataset.points().rows().enumerate() {
            if labels[i] == 0 {
                total += row
                    .iter()
                    .zip(&smurf_center)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>();
                count += 1;
            }
        }
        let msd = total / count as f64;
        assert!(msd < 1e6, "smurf cluster too loose: {msd}");
    }

    #[test]
    fn zero_points_rejected() {
        assert!(KddLike::new(0).generate(0).is_err());
    }
}
