//! Synthetic dataset generators reproducing the paper's three workloads.
//!
//! * [`GaussMixture`] — the §4.1 synthetic mixture, implemented exactly as
//!   described (Table 1, Figure 5.2).
//! * [`SpamLike`] — stand-in for UCI Spambase (Table 2, Table 6,
//!   Figure 5.3).
//! * [`KddLike`] — stand-in for KDDCup1999 (Tables 3–5, Figure 5.1).
//!
//! All generators are deterministic functions of their parameters and a
//! 64-bit seed, so every experiment in EXPERIMENTS.md can be regenerated
//! bit-for-bit. Each returns a [`SyntheticDataset`](crate::dataset::SyntheticDataset)
//! carrying the ground-truth component centers and per-point component
//! labels for evaluation.

mod gauss;
mod kdd;
mod spam;

pub use gauss::GaussMixture;
pub use kdd::{KddLike, KDD_DIM};
pub use spam::{SpamLike, SPAM_DIM};
