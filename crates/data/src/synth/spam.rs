//! A statistical stand-in for the UCI **Spambase** dataset (Table 2,
//! Table 6, Figure 5.3 of the paper).
//!
//! The real dataset is 4 601 e-mails × 58 attributes: 48 word-frequency
//! percentages, 6 character-frequency percentages, and 3 capital-run-length
//! statistics (average, longest, total), plus the paper counts one more
//! derived dimension. Since the raw file cannot be fetched offline, this
//! generator reproduces the *properties that drive the paper's results*:
//!
//! 1. **Zero-inflated frequency features** — most of the 54 percentage
//!    dimensions are zero for most documents and follow bursty exponential
//!    magnitudes when present.
//! 2. **A few heavy-tailed dimensions** — the capital-run lengths are
//!    log-normal with totals reaching the tens of thousands. These
//!    dimensions dominate the clustering potential and create the outliers
//!    that "confuse" `Random` initialization (the paper's explanation of
//!    why its seeding cost is 10–60× worse than k-means++ in Table 2).
//! 3. **Latent topical structure** — points are drawn from 20 latent
//!    "templates" (12 ham topics, 8 spam campaign types) that modulate
//!    which words appear, giving genuine multi-cluster structure at the
//!    paper's k ∈ {20, 50, 100}.
//!
//! The template/dimension parameters are derived from a *fixed* internal
//! seed, so — like the real Spambase — there is one canonical dataset
//! family; the user-facing seed only varies the sampled points.

use crate::dataset::{Dataset, SyntheticDataset};
use crate::error::DataError;
use crate::matrix::PointMatrix;
use kmeans_util::Rng;

/// Dimensionality of the Spam dataset as reported by the paper (§4.1).
pub const SPAM_DIM: usize = 58;

/// Number of points in the real Spambase dataset.
const SPAM_N: usize = 4_601;

/// Fraction of spam messages in the real dataset (1813 / 4601).
const SPAM_FRACTION: f64 = 0.394;

/// Internal seed fixing the template parameters (the "dataset identity").
const PARAM_SEED: u64 = 0x5BA7_BA5E;

const N_WORD: usize = 48;
const N_CHAR: usize = 6;
const N_HAM_TEMPLATES: usize = 12;
const N_SPAM_TEMPLATES: usize = 8;

/// Per-template generation parameters.
struct Template {
    /// Presence probability per frequency dimension (word + char).
    presence: Vec<f64>,
    /// Mean magnitude (percent) per frequency dimension when present.
    magnitude: Vec<f64>,
    /// Log-normal (mu, sigma) for the three capital-run dimensions.
    capital: [(f64, f64); 3],
    /// Log-normal (mu, sigma) for the token-count dimension.
    tokens: (f64, f64),
}

impl Template {
    /// Builds template `t` (global index) for class `spam`.
    fn build(t: usize, spam: bool) -> Template {
        let mut rng = Rng::derive(PARAM_SEED, &[t as u64]);
        let mut presence = Vec::with_capacity(N_WORD + N_CHAR);
        let mut magnitude = Vec::with_capacity(N_WORD + N_CHAR);
        for _ in 0..N_WORD {
            // Each template activates a sparse subset of the vocabulary.
            let active = rng.bernoulli(0.18);
            presence.push(if active {
                rng.uniform(0.25, 0.6)
            } else {
                rng.uniform(0.01, 0.06)
            });
            magnitude.push(if active {
                rng.uniform(0.8, 2.5)
            } else {
                rng.uniform(0.05, 0.4)
            });
        }
        for c in 0..N_CHAR {
            // Punctuation frequencies; spam boosts '!' and '$' (dims 0, 1).
            let boost = if spam && c < 2 { 4.0 } else { 1.0 };
            presence.push(rng.uniform(0.3, 0.7));
            magnitude.push(rng.uniform(0.05, 0.3) * boost);
        }
        // Capital-run statistics: spam is shouty, with far heavier tails.
        // Magnitudes chosen so that the total-run dimension produces rare
        // outliers in the tens of thousands, as in the real data.
        let jitter = rng.uniform(-0.2, 0.2);
        let capital = if spam {
            [
                (1.2 + jitter, 0.6), // average run length ~ e^1.2 ≈ 3.3
                (3.6 + jitter, 1.0), // longest run ~ e^3.6 ≈ 37
                (5.8 + jitter, 1.3), // total capitals ~ e^5.8 ≈ 330
            ]
        } else {
            [
                (0.8 + jitter, 0.35),
                (2.2 + jitter, 0.7),
                (4.0 + jitter, 1.0),
            ]
        };
        let tokens = (4.3 + rng.uniform(-0.3, 0.3), 0.7);
        Template {
            presence,
            magnitude,
            capital,
            tokens,
        }
    }
}

/// Generator for the Spambase stand-in.
///
/// Defaults match the paper: 4 601 points, 58 dimensions, 39.4 % spam.
///
/// ```
/// use kmeans_data::synth::{SpamLike, SPAM_DIM};
/// let synth = SpamLike::new().generate(42).unwrap();
/// assert_eq!(synth.dataset.len(), 4601);
/// assert_eq!(synth.dataset.dim(), SPAM_DIM);
/// ```
#[derive(Clone, Debug)]
pub struct SpamLike {
    n: usize,
    spam_fraction: f64,
}

impl Default for SpamLike {
    fn default() -> Self {
        Self::new()
    }
}

impl SpamLike {
    /// Creates a generator with the real dataset's shape.
    pub fn new() -> Self {
        SpamLike {
            n: SPAM_N,
            spam_fraction: SPAM_FRACTION,
        }
    }

    /// Overrides the number of points (the paper uses 4 601).
    pub fn points(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Overrides the spam class fraction.
    pub fn spam_fraction(mut self, f: f64) -> Self {
        self.spam_fraction = f;
        self
    }

    /// Generates the dataset deterministically from `seed`.
    ///
    /// Labels are the latent template ids (0..11 ham topics, 12..19 spam
    /// campaigns); `true_centers` are the template mean profiles.
    pub fn generate(&self, seed: u64) -> Result<SyntheticDataset, DataError> {
        if self.n == 0 {
            return Err(DataError::InvalidParam("n must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.spam_fraction) {
            return Err(DataError::InvalidParam(
                "spam_fraction must be in [0, 1]".into(),
            ));
        }

        let templates: Vec<(Template, bool)> = (0..N_HAM_TEMPLATES)
            .map(|t| (Template::build(t, false), false))
            .chain(
                (0..N_SPAM_TEMPLATES).map(|t| (Template::build(N_HAM_TEMPLATES + t, true), true)),
            )
            .collect();

        let mut rng = Rng::derive(seed, &[2]);
        let mut points = PointMatrix::with_capacity(SPAM_DIM, self.n);
        let mut labels = Vec::with_capacity(self.n);
        let mut row = vec![0.0; SPAM_DIM];
        for _ in 0..self.n {
            let spam = rng.bernoulli(self.spam_fraction);
            let tid = if spam {
                N_HAM_TEMPLATES + rng.range_usize(N_SPAM_TEMPLATES)
            } else {
                rng.range_usize(N_HAM_TEMPLATES)
            };
            let (template, _) = &templates[tid];
            fill_point(template, &mut row, &mut rng);
            points.push(&row)?;
            labels.push(tid as u32);
        }

        // Template mean profiles serve as ground-truth centers.
        let mut centers = PointMatrix::with_capacity(SPAM_DIM, templates.len());
        for (template, _) in &templates {
            centers.push(&template_mean(template))?;
        }

        let name = format!("spam-like(n={},d={SPAM_DIM})", self.n);
        Ok(SyntheticDataset {
            dataset: Dataset::with_labels(name, points, labels)?,
            true_centers: centers,
        })
    }
}

/// Samples one point from a template into `row`.
fn fill_point(t: &Template, row: &mut [f64], rng: &mut Rng) {
    for (j, cell) in row.iter_mut().take(N_WORD + N_CHAR).enumerate() {
        *cell = if rng.bernoulli(t.presence[j]) {
            // Bursty magnitudes, capped at 100 (they are percentages).
            (rng.exponential(1.0 / t.magnitude[j])).min(100.0)
        } else {
            0.0
        };
    }
    for (c, &(mu, sigma)) in t.capital.iter().enumerate() {
        row[N_WORD + N_CHAR + c] = 1.0 + rng.lognormal(mu, sigma);
    }
    row[SPAM_DIM - 1] = rng.lognormal(t.tokens.0, t.tokens.1);
}

/// Analytic mean of a template's distribution (used as ground-truth center).
fn template_mean(t: &Template) -> Vec<f64> {
    let mut mean = vec![0.0; SPAM_DIM];
    for (j, cell) in mean.iter_mut().take(N_WORD + N_CHAR).enumerate() {
        // E[presence · Exp(mean)] — ignoring the cap at 100, which is hit
        // with negligible probability for these magnitudes.
        *cell = t.presence[j] * t.magnitude[j];
    }
    for (c, &(mu, sigma)) in t.capital.iter().enumerate() {
        mean[N_WORD + N_CHAR + c] = 1.0 + (mu + 0.5 * sigma * sigma).exp();
    }
    mean[SPAM_DIM - 1] = (t.tokens.0 + 0.5 * t.tokens.1 * t.tokens.1).exp();
    mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shape_matches_paper() {
        let s = SpamLike::new().generate(1).unwrap();
        assert_eq!(s.dataset.len(), 4_601);
        assert_eq!(s.dataset.dim(), 58);
        assert_eq!(s.true_centers.len(), 20);
        assert_eq!(s.dataset.n_classes(), 20);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SpamLike::new().points(300).generate(9).unwrap();
        let b = SpamLike::new().points(300).generate(9).unwrap();
        assert_eq!(a.dataset.points(), b.dataset.points());
        let c = SpamLike::new().points(300).generate(10).unwrap();
        assert_ne!(a.dataset.points(), c.dataset.points());
    }

    #[test]
    fn spam_fraction_is_respected() {
        let s = SpamLike::new().points(20_000).generate(3).unwrap();
        let labels = s.dataset.labels().unwrap();
        let spam = labels.iter().filter(|&&l| l >= 12).count();
        let frac = spam as f64 / labels.len() as f64;
        assert!((frac - SPAM_FRACTION).abs() < 0.02, "spam fraction {frac}");
    }

    #[test]
    fn frequency_dims_are_zero_inflated_percentages() {
        let s = SpamLike::new().points(2_000).generate(4).unwrap();
        let mut zeros = 0usize;
        let mut cells = 0usize;
        for row in s.dataset.points().rows() {
            for &v in &row[..N_WORD] {
                assert!((0.0..=100.0).contains(&v), "frequency out of range: {v}");
                zeros += (v == 0.0) as usize;
                cells += 1;
            }
        }
        let zero_frac = zeros as f64 / cells as f64;
        assert!(
            zero_frac > 0.5,
            "expected zero-inflation, zero fraction {zero_frac}"
        );
    }

    #[test]
    fn capital_runs_have_heavy_tails() {
        let s = SpamLike::new().generate(5).unwrap();
        let total_dim = N_WORD + N_CHAR + 2; // "total capitals"
        let mut values: Vec<f64> = s.dataset.points().rows().map(|r| r[total_dim]).collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = values[values.len() / 2];
        let max = *values.last().unwrap();
        // Real Spambase: median 95, max 15 841 — a two-orders-of-magnitude
        // tail. Require at least that spread.
        assert!(
            max / median > 50.0,
            "tail too light: median {median}, max {max}"
        );
        assert!(values[0] >= 1.0, "capital run below 1");
    }

    #[test]
    fn heavy_dims_dominate_total_variance() {
        // The substitution argument (DESIGN.md §2) requires the capital-run
        // block to dominate the potential, as in the real data.
        let s = SpamLike::new().generate(6).unwrap();
        let pts = s.dataset.points();
        let centroid = pts.centroid().unwrap();
        let mut var = vec![0.0; SPAM_DIM];
        for row in pts.rows() {
            for j in 0..SPAM_DIM {
                let d = row[j] - centroid[j];
                var[j] += d * d;
            }
        }
        let heavy: f64 = var[N_WORD + N_CHAR..N_WORD + N_CHAR + 3].iter().sum();
        let total: f64 = var.iter().sum();
        assert!(
            heavy / total > 0.9,
            "capital-run dims carry {:.3} of variance",
            heavy / total
        );
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(SpamLike::new().points(0).generate(0).is_err());
        assert!(SpamLike::new().spam_fraction(1.5).generate(0).is_err());
    }
}
