//! Flat row-major point storage.
//!
//! All algorithms in the workspace operate on a [`PointMatrix`]: `n` points
//! of fixed dimension `d` stored contiguously (`data[i*d .. (i+1)*d]` is
//! point `i`). A flat `Vec<f64>` keeps rows cache-adjacent for the distance
//! kernels and makes shard boundaries trivial for the parallel executor.

use crate::error::DataError;

/// A dense matrix of `n` points × `d` dimensions, row-major.
///
/// ```
/// use kmeans_data::PointMatrix;
/// let mut m = PointMatrix::new(2);
/// m.push(&[1.0, 2.0]).unwrap();
/// m.push(&[3.0, 4.0]).unwrap();
/// assert_eq!(m.len(), 2);
/// assert_eq!(m.row(1), &[3.0, 4.0]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PointMatrix {
    data: Vec<f64>,
    dim: usize,
}

impl PointMatrix {
    /// Creates an empty matrix of the given dimensionality.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "PointMatrix dimension must be positive");
        PointMatrix {
            data: Vec::new(),
            dim,
        }
    }

    /// Creates an empty matrix with room for `n` points.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "PointMatrix dimension must be positive");
        PointMatrix {
            data: Vec::with_capacity(dim * n),
            dim,
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// Fails with [`DataError::RaggedBuffer`] if `data.len()` is not a
    /// multiple of `dim`.
    pub fn from_flat(data: Vec<f64>, dim: usize) -> Result<Self, DataError> {
        if dim == 0 {
            return Err(DataError::InvalidParam("dim must be positive".into()));
        }
        if !data.len().is_multiple_of(dim) {
            return Err(DataError::RaggedBuffer {
                len: data.len(),
                dim,
            });
        }
        Ok(PointMatrix { data, dim })
    }

    /// Builds a matrix from row slices, checking that all rows agree on
    /// dimensionality.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Result<Self, DataError> {
        let first = rows.first().ok_or(DataError::Empty)?;
        let dim = first.as_ref().len();
        if dim == 0 {
            return Err(DataError::InvalidParam("rows must be non-empty".into()));
        }
        let mut m = PointMatrix::with_capacity(dim, rows.len());
        for row in rows {
            m.push(row.as_ref())?;
        }
        Ok(m)
    }

    /// Appends one point.
    pub fn push(&mut self, row: &[f64]) -> Result<(), DataError> {
        if row.len() != self.dim {
            return Err(DataError::DimensionMismatch {
                expected: self.dim,
                got: row.len(),
            });
        }
        self.data.extend_from_slice(row);
        Ok(())
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the matrix holds no points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality of each point.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrows point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutably borrows point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates over all points in order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.dim)
    }

    /// The underlying flat buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix, returning the flat buffer.
    pub fn into_flat(self) -> Vec<f64> {
        self.data
    }

    /// Builds a new matrix containing the rows at `indices` (in the given
    /// order; duplicates allowed).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> PointMatrix {
        let mut out = PointMatrix::with_capacity(self.dim, indices.len());
        for &i in indices {
            out.data.extend_from_slice(self.row(i));
        }
        out
    }

    /// Removes all points, keeping the allocation and dimensionality.
    ///
    /// Block readers reuse one matrix as their per-block buffer; `clear`
    /// plus [`PointMatrix::extend_from_flat`] refills it without
    /// reallocating.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Appends rows from a flat row-major buffer.
    ///
    /// Fails with [`DataError::RaggedBuffer`] if `data.len()` is not a
    /// multiple of the matrix dimensionality.
    pub fn extend_from_flat(&mut self, data: &[f64]) -> Result<(), DataError> {
        if !data.len().is_multiple_of(self.dim) {
            return Err(DataError::RaggedBuffer {
                len: data.len(),
                dim: self.dim,
            });
        }
        self.data.extend_from_slice(data);
        Ok(())
    }

    /// Appends all rows of `other`.
    pub fn extend_from(&mut self, other: &PointMatrix) -> Result<(), DataError> {
        if other.dim != self.dim {
            return Err(DataError::DimensionMismatch {
                expected: self.dim,
                got: other.dim,
            });
        }
        self.data.extend_from_slice(&other.data);
        Ok(())
    }

    /// Centroid (arithmetic mean) of all points, or `None` if empty.
    pub fn centroid(&self) -> Option<Vec<f64>> {
        if self.is_empty() {
            return None;
        }
        let mut c = vec![0.0; self.dim];
        for row in self.rows() {
            for (acc, &v) in c.iter_mut().zip(row) {
                *acc += v;
            }
        }
        let inv = 1.0 / self.len() as f64;
        for v in &mut c {
            *v *= inv;
        }
        Some(c)
    }

    /// Returns per-dimension `(min, max)` bounds, or `None` if empty.
    pub fn bounds(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        if self.is_empty() {
            return None;
        }
        let mut lo = vec![f64::INFINITY; self.dim];
        let mut hi = vec![f64::NEG_INFINITY; self.dim];
        for row in self.rows() {
            for j in 0..self.dim {
                lo[j] = lo[j].min(row[j]);
                hi[j] = hi[j].max(row[j]);
            }
        }
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut m = PointMatrix::new(3);
        assert!(m.is_empty());
        m.push(&[1.0, 2.0, 3.0]).unwrap();
        m.push(&[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.dim(), 3);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.rows().count(), 2);
        assert_eq!(m.as_slice().len(), 6);
    }

    #[test]
    fn push_wrong_dim_fails() {
        let mut m = PointMatrix::new(2);
        let err = m.push(&[1.0]).unwrap_err();
        assert!(matches!(
            err,
            DataError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn from_flat_checks_divisibility() {
        assert!(PointMatrix::from_flat(vec![1.0, 2.0, 3.0], 2).is_err());
        let m = PointMatrix::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2).unwrap();
        assert_eq!(m.len(), 2);
        assert!(PointMatrix::from_flat(vec![], 3).unwrap().is_empty());
        assert!(PointMatrix::from_flat(vec![1.0], 0).is_err());
    }

    #[test]
    fn from_rows_checks_consistency() {
        let m = PointMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.len(), 2);
        assert!(PointMatrix::from_rows(&[vec![1.0], vec![2.0, 3.0]]).is_err());
        let empty: Vec<Vec<f64>> = vec![];
        assert!(matches!(
            PointMatrix::from_rows(&empty),
            Err(DataError::Empty)
        ));
    }

    #[test]
    fn row_mut_modifies_in_place() {
        let mut m = PointMatrix::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2).unwrap();
        m.row_mut(0)[1] = 9.0;
        assert_eq!(m.row(0), &[1.0, 9.0]);
    }

    #[test]
    fn select_gathers_rows_in_order() {
        let m = PointMatrix::from_flat(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0], 2).unwrap();
        let s = m.select(&[2, 0, 2]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.row(0), &[4.0, 5.0]);
        assert_eq!(s.row(1), &[0.0, 1.0]);
        assert_eq!(s.row(2), &[4.0, 5.0]);
        assert!(m.select(&[]).is_empty());
    }

    #[test]
    fn extend_from_checks_dim() {
        let mut a = PointMatrix::from_flat(vec![1.0, 2.0], 2).unwrap();
        let b = PointMatrix::from_flat(vec![3.0, 4.0], 2).unwrap();
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 2);
        let c = PointMatrix::from_flat(vec![1.0, 2.0, 3.0], 3).unwrap();
        assert!(a.extend_from(&c).is_err());
    }

    #[test]
    fn centroid_and_bounds() {
        let m = PointMatrix::from_flat(vec![0.0, 10.0, 2.0, 20.0, 4.0, 30.0], 2).unwrap();
        assert_eq!(m.centroid().unwrap(), vec![2.0, 20.0]);
        let (lo, hi) = m.bounds().unwrap();
        assert_eq!(lo, vec![0.0, 10.0]);
        assert_eq!(hi, vec![4.0, 30.0]);
        assert!(PointMatrix::new(2).centroid().is_none());
        assert!(PointMatrix::new(2).bounds().is_none());
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_panics() {
        PointMatrix::new(0);
    }

    #[test]
    fn clear_and_extend_from_flat_reuse_the_buffer() {
        let mut m = PointMatrix::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2).unwrap();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.dim(), 2);
        m.extend_from_flat(&[5.0, 6.0]).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.row(0), &[5.0, 6.0]);
        assert!(matches!(
            m.extend_from_flat(&[1.0]),
            Err(DataError::RaggedBuffer { len: 1, dim: 2 })
        ));
    }

    #[test]
    fn into_flat_round_trip() {
        let m = PointMatrix::from_flat(vec![1.0, 2.0], 1).unwrap();
        assert_eq!(m.clone().into_flat(), vec![1.0, 2.0]);
    }
}
