//! Dataset transformations: sampling, normalization, splitting.
//!
//! The paper's Figure 5.1 uses "a 10% sample of KDDCup1999" —
//! [`subsample`] provides exactly that (uniform without replacement).
//! Normalizers are included for downstream users; note the paper clusters
//! the *raw* features (scale effects are part of its story), so the
//! experiment harness never normalizes.

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::matrix::PointMatrix;
use kmeans_util::sampling::uniform_distinct;
use kmeans_util::Rng;

/// Uniformly samples `fraction` of the dataset without replacement.
///
/// The sample size is `round(fraction · n)`, clamped to `[1, n]`.
pub fn subsample(dataset: &Dataset, fraction: f64, seed: u64) -> Result<Dataset, DataError> {
    if !(0.0..=1.0).contains(&fraction) {
        return Err(DataError::InvalidParam(format!(
            "fraction {fraction} not in [0, 1]"
        )));
    }
    if dataset.is_empty() {
        return Err(DataError::Empty);
    }
    let n = dataset.len();
    let m = ((fraction * n as f64).round() as usize).clamp(1, n);
    let mut rng = Rng::derive(seed, &[4]);
    let indices = uniform_distinct(n, m, &mut rng);
    Ok(dataset.select(&indices))
}

/// Splits a dataset into two disjoint parts with `left_fraction` of the
/// points (at least one point on each side when possible).
pub fn split(
    dataset: &Dataset,
    left_fraction: f64,
    seed: u64,
) -> Result<(Dataset, Dataset), DataError> {
    if !(0.0..=1.0).contains(&left_fraction) {
        return Err(DataError::InvalidParam(format!(
            "fraction {left_fraction} not in [0, 1]"
        )));
    }
    let n = dataset.len();
    if n < 2 {
        return Err(DataError::InvalidParam(
            "split needs at least two points".into(),
        ));
    }
    let m = ((left_fraction * n as f64).round() as usize).clamp(1, n - 1);
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = Rng::derive(seed, &[5]);
    rng.shuffle(&mut indices);
    let (left, right) = indices.split_at(m);
    let mut left = left.to_vec();
    let mut right = right.to_vec();
    left.sort_unstable();
    right.sort_unstable();
    Ok((dataset.select(&left), dataset.select(&right)))
}

/// A fitted per-dimension affine normalizer: `x' = (x - shift) / scale`.
#[derive(Clone, Debug)]
pub struct Normalizer {
    shift: Vec<f64>,
    scale: Vec<f64>,
}

impl Normalizer {
    /// Fits a z-score normalizer (shift = mean, scale = std; constant
    /// dimensions get scale 1 so they map to zero).
    pub fn zscore(points: &PointMatrix) -> Result<Normalizer, DataError> {
        if points.is_empty() {
            return Err(DataError::Empty);
        }
        let d = points.dim();
        let n = points.len() as f64;
        let mean = points.centroid().expect("non-empty");
        let mut var = vec![0.0; d];
        for row in points.rows() {
            for j in 0..d {
                let diff = row[j] - mean[j];
                var[j] += diff * diff;
            }
        }
        let scale = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Ok(Normalizer { shift: mean, scale })
    }

    /// Fits a min-max normalizer to `[0, 1]` (constant dimensions map to 0).
    pub fn minmax(points: &PointMatrix) -> Result<Normalizer, DataError> {
        let (lo, hi) = points.bounds().ok_or(DataError::Empty)?;
        let scale = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| if h > l { h - l } else { 1.0 })
            .collect();
        Ok(Normalizer { shift: lo, scale })
    }

    /// Applies the normalizer, producing a new matrix.
    pub fn apply(&self, points: &PointMatrix) -> Result<PointMatrix, DataError> {
        if points.dim() != self.shift.len() {
            return Err(DataError::DimensionMismatch {
                expected: self.shift.len(),
                got: points.dim(),
            });
        }
        let mut out = PointMatrix::with_capacity(points.dim(), points.len());
        let mut buf = vec![0.0; points.dim()];
        for row in points.rows() {
            for (j, &v) in row.iter().enumerate() {
                buf[j] = (v - self.shift[j]) / self.scale[j];
            }
            out.push(&buf)?;
        }
        Ok(out)
    }

    /// Maps normalized coordinates back to the original space.
    pub fn invert(&self, points: &PointMatrix) -> Result<PointMatrix, DataError> {
        if points.dim() != self.shift.len() {
            return Err(DataError::DimensionMismatch {
                expected: self.shift.len(),
                got: points.dim(),
            });
        }
        let mut out = PointMatrix::with_capacity(points.dim(), points.len());
        let mut buf = vec![0.0; points.dim()];
        for row in points.rows() {
            for (j, &v) in row.iter().enumerate() {
                buf[j] = v * self.scale[j] + self.shift[j];
            }
            out.push(&buf)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let mut m = PointMatrix::new(2);
        for i in 0..n {
            m.push(&[i as f64, 2.0 * i as f64]).unwrap();
        }
        Dataset::with_labels("toy", m, (0..n as u32).collect()).unwrap()
    }

    #[test]
    fn subsample_size_and_determinism() {
        let d = toy(100);
        let s = subsample(&d, 0.1, 7).unwrap();
        assert_eq!(s.len(), 10);
        let s2 = subsample(&d, 0.1, 7).unwrap();
        assert_eq!(s.points(), s2.points());
        let s3 = subsample(&d, 0.1, 8).unwrap();
        assert_ne!(s.points(), s3.points());
        // Labels follow their points.
        for (i, row) in s.points().rows().enumerate() {
            assert_eq!(row[0] as u32, s.labels().unwrap()[i]);
        }
    }

    #[test]
    fn subsample_edge_fractions() {
        let d = toy(10);
        assert_eq!(subsample(&d, 1.0, 0).unwrap().len(), 10);
        assert_eq!(subsample(&d, 0.0, 0).unwrap().len(), 1); // clamped to 1
        assert!(subsample(&d, 1.5, 0).is_err());
        assert!(subsample(&toy(1), 0.5, 0).unwrap().len() == 1);
    }

    #[test]
    fn split_is_disjoint_partition() {
        let d = toy(50);
        let (a, b) = split(&d, 0.3, 3).unwrap();
        assert_eq!(a.len(), 15);
        assert_eq!(b.len(), 35);
        let mut all: Vec<u32> = a
            .labels()
            .unwrap()
            .iter()
            .chain(b.labels().unwrap())
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn split_requires_two_points() {
        assert!(split(&toy(1), 0.5, 0).is_err());
        let (a, b) = split(&toy(2), 0.0, 0).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn zscore_normalizes_moments() {
        let d = toy(100);
        let norm = Normalizer::zscore(d.points()).unwrap();
        let out = norm.apply(d.points()).unwrap();
        let c = out.centroid().unwrap();
        assert!(c.iter().all(|v| v.abs() < 1e-9), "centroid {c:?}");
        // Unit variance per dimension.
        let mut var = vec![0.0; 2];
        for row in out.rows() {
            for j in 0..2 {
                var[j] += row[j] * row[j];
            }
        }
        for v in &var {
            assert!((v / 100.0 - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zscore_constant_dimension() {
        let m = PointMatrix::from_flat(vec![5.0, 1.0, 5.0, 2.0], 2).unwrap();
        let norm = Normalizer::zscore(&m).unwrap();
        let out = norm.apply(&m).unwrap();
        assert_eq!(out.row(0)[0], 0.0);
        assert_eq!(out.row(1)[0], 0.0);
    }

    #[test]
    fn minmax_maps_to_unit_box() {
        let m = PointMatrix::from_flat(vec![0.0, -10.0, 4.0, 10.0, 2.0, 0.0], 2).unwrap();
        let norm = Normalizer::minmax(&m).unwrap();
        let out = norm.apply(&m).unwrap();
        let (lo, hi) = out.bounds().unwrap();
        assert_eq!(lo, vec![0.0, 0.0]);
        assert_eq!(hi, vec![1.0, 1.0]);
    }

    #[test]
    fn normalizer_round_trips() {
        let d = toy(20);
        let norm = Normalizer::zscore(d.points()).unwrap();
        let there = norm.apply(d.points()).unwrap();
        let back = norm.invert(&there).unwrap();
        for (orig, rec) in d.points().rows().zip(back.rows()) {
            for (a, b) in orig.iter().zip(rec) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn normalizer_checks_dimensions() {
        let d = toy(5);
        let norm = Normalizer::zscore(d.points()).unwrap();
        let wrong = PointMatrix::from_flat(vec![1.0, 2.0, 3.0], 3).unwrap();
        assert!(norm.apply(&wrong).is_err());
        assert!(norm.invert(&wrong).is_err());
        assert!(Normalizer::zscore(&PointMatrix::new(2)).is_err());
        assert!(Normalizer::minmax(&PointMatrix::new(2)).is_err());
    }
}
