//! The `skmb` binary block file: the on-disk format behind out-of-core
//! clustering, plus its budgeted reader.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"SKMBLK01"
//! 8       4     dim        (u32, > 0)
//! 12      4     block_rows (u32, > 0)
//! 16      8     rows       (u64)
//! 24      —     payload: rows × dim f64 values, row-major
//! ```
//!
//! Rows are stored contiguously; block `b` starts at byte
//! `24 + b · block_rows · dim · 8`, so any block is one seek + one read.
//! Write files with [`BlockFileWriter`] (streaming, one row at a time —
//! the `skm convert` subcommand never materializes the dataset) or
//! [`write_block_file`] (from an in-memory matrix); read them with
//! [`BlockFileSource`], which enforces a caller-configured memory budget
//! and reports peak residency for the out-of-core assertions in
//! `tests/chunked_parity.rs`.

use crate::chunked::{check_block_buffer, ChunkedSource, Residency};
use crate::error::DataError;
use crate::matrix::PointMatrix;
use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Mutex;

/// File magic identifying the format (see module docs).
pub const BLOCK_FILE_MAGIC: [u8; 8] = *b"SKMBLK01";
/// Header size in bytes; the payload starts here.
const HEADER_BYTES: u64 = 24;

/// Streaming writer for the binary block format.
///
/// ```
/// use kmeans_data::{BlockFileWriter, BlockFileSource, ChunkedSource};
/// let path = std::env::temp_dir().join("kmeans_blockfile_doc.skmb");
/// let mut writer = BlockFileWriter::create(&path, 2, 4).unwrap();
/// for i in 0..10 {
///     writer.push_row(&[i as f64, -(i as f64)]).unwrap();
/// }
/// assert_eq!(writer.finish().unwrap(), 10);
/// let source = BlockFileSource::open(&path, 1 << 20).unwrap();
/// assert_eq!((source.len(), source.dim(), source.num_blocks()), (10, 2, 3));
/// # std::fs::remove_file(path).unwrap();
/// ```
pub struct BlockFileWriter {
    out: BufWriter<File>,
    dim: usize,
    rows: u64,
}

impl fmt::Debug for BlockFileWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlockFileWriter")
            .field("dim", &self.dim)
            .field("rows", &self.rows)
            .finish()
    }
}

impl BlockFileWriter {
    /// Creates a block file, writing a header with a zero row count that
    /// [`BlockFileWriter::finish`] patches.
    pub fn create(
        path: impl AsRef<Path>,
        dim: usize,
        block_rows: usize,
    ) -> Result<Self, DataError> {
        if dim == 0 {
            return Err(DataError::InvalidParam("dim must be positive".into()));
        }
        if block_rows == 0 {
            return Err(DataError::InvalidParam(
                "block_rows must be positive".into(),
            ));
        }
        let dim_u32 = u32::try_from(dim)
            .map_err(|_| DataError::InvalidParam(format!("dim {dim} exceeds u32")))?;
        let block_u32 = u32::try_from(block_rows)
            .map_err(|_| DataError::InvalidParam(format!("block_rows {block_rows} exceeds u32")))?;
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(&BLOCK_FILE_MAGIC)?;
        out.write_all(&dim_u32.to_le_bytes())?;
        out.write_all(&block_u32.to_le_bytes())?;
        out.write_all(&0u64.to_le_bytes())?;
        Ok(BlockFileWriter { out, dim, rows: 0 })
    }

    /// Appends one row.
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), DataError> {
        if row.len() != self.dim {
            return Err(DataError::DimensionMismatch {
                expected: self.dim,
                got: row.len(),
            });
        }
        for &v in row {
            self.out.write_all(&v.to_le_bytes())?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Appends every row of a matrix.
    pub fn write_matrix(&mut self, matrix: &PointMatrix) -> Result<(), DataError> {
        for row in matrix.rows() {
            self.push_row(row)?;
        }
        Ok(())
    }

    /// Patches the header row count and flushes; returns the rows written.
    pub fn finish(mut self) -> Result<u64, DataError> {
        self.out.flush()?;
        let mut file = self.out.into_inner().map_err(|e| e.into_error())?;
        file.seek(SeekFrom::Start(16))?;
        file.write_all(&self.rows.to_le_bytes())?;
        file.sync_data()?;
        Ok(self.rows)
    }
}

/// Writes an in-memory matrix as a block file (convenience wrapper over
/// [`BlockFileWriter`]).
pub fn write_block_file(
    path: impl AsRef<Path>,
    matrix: &PointMatrix,
    block_rows: usize,
) -> Result<(), DataError> {
    let mut writer = BlockFileWriter::create(path, matrix.dim(), block_rows)?;
    writer.write_matrix(matrix)?;
    writer.finish()?;
    Ok(())
}

/// Converts a CSV file to a block file in one streaming pass — each line
/// is parsed exactly once and written straight through; the dataset is
/// never materialized (this is what `skm convert` runs). Returns
/// `(rows, dim)`. With [`LabelColumn::Last`](crate::io::LabelColumn::Last)
/// the final column is validated and dropped, under the same contract as
/// [`crate::io::read_csv`].
pub fn csv_to_block_file(
    csv_path: impl AsRef<Path>,
    out_path: impl AsRef<Path>,
    block_rows: usize,
    labels: crate::io::LabelColumn,
) -> Result<(usize, usize), DataError> {
    let out_path = out_path.as_ref();
    let result = csv_to_block_file_inner(csv_path.as_ref(), out_path, block_rows, labels);
    if result.is_err() {
        // Never leave a half-written block file behind: its valid magic
        // and zero-row header would auto-detect as an "empty" dataset on
        // the next chunked fit, masking the real conversion failure.
        let _ = std::fs::remove_file(out_path);
    }
    result
}

fn csv_to_block_file_inner(
    csv_path: &Path,
    out_path: &Path,
    block_rows: usize,
    labels: crate::io::LabelColumn,
) -> Result<(usize, usize), DataError> {
    use crate::chunked::{parse_cells, validate_row};
    use std::io::BufRead;

    if block_rows == 0 {
        return Err(DataError::InvalidParam(
            "block_rows must be positive".into(),
        ));
    }
    let mut reader = std::io::BufReader::new(File::open(csv_path)?);
    let mut line = String::new();
    let mut scratch: Vec<f64> = Vec::new();
    let mut line_no = 0usize;
    let mut rows = 0usize;
    let mut dim: Option<usize> = None;
    // The writer needs the dimensionality, which the first data row fixes.
    let mut writer: Option<BlockFileWriter> = None;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if !parse_cells(trimmed, &mut scratch) {
            // Only the first data-bearing line may be non-numeric (header).
            if rows == 0 && dim.is_none() {
                continue;
            }
            return Err(DataError::Parse {
                line: line_no,
                message: format!("unparseable numeric row: {trimmed:.40}"),
            });
        }
        let d = validate_row(&scratch, labels, line_no, dim)?;
        let writer = match &mut writer {
            Some(w) => w,
            None => writer.insert(BlockFileWriter::create(out_path, d, block_rows)?),
        };
        writer.push_row(&scratch[..d])?;
        dim = Some(d);
        rows += 1;
    }
    let (Some(writer), Some(dim)) = (writer, dim) else {
        return Err(DataError::Empty);
    };
    writer.finish()?;
    Ok((rows, dim))
}

/// Returns whether `path` starts with the block-file magic (used by the
/// CLI to auto-detect the input format).
pub fn is_block_file(path: impl AsRef<Path>) -> bool {
    let Ok(mut file) = File::open(path) else {
        return false;
    };
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic).is_ok() && magic == BLOCK_FILE_MAGIC
}

/// One cached decoded block; `tick` is the last-use stamp LRU eviction
/// compares.
struct CacheEntry {
    data: Vec<f64>,
    tick: u64,
}

/// LRU cache + accounting state behind the reader's interior mutability.
/// Lookup is O(1) (hits are the hot path — one per gather on cached
/// blocks); the least-recently-used scan runs only when a miss must evict.
struct ReaderState {
    file: File,
    cache: HashMap<usize, CacheEntry>,
    cache_bytes: u64,
    tick: u64,
    stats: Residency,
}

/// Budgeted [`ChunkedSource`] over a binary block file.
///
/// The memory budget covers every decoded feature block the source
/// materializes: the block copy handed to the caller plus an internal LRU
/// cache (capacity `budget − block_bytes`; zero cache when the budget only
/// fits the working block). Cache misses stream-decode through a fixed
/// staging buffer of at most 64 KiB — the only allocation outside the
/// budget, constant regardless of block or dataset size.
/// [`ChunkedSource::residency`] reports the peak, and
/// `peak_bytes ≤ budget` is an invariant — a dataset larger than the
/// budget streams, it is never fully resident.
pub struct BlockFileSource {
    state: Mutex<ReaderState>,
    rows: usize,
    dim: usize,
    block_rows: usize,
    budget_bytes: u64,
}

impl fmt::Debug for BlockFileSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlockFileSource")
            .field("rows", &self.rows)
            .field("dim", &self.dim)
            .field("block_rows", &self.block_rows)
            .field("budget_bytes", &self.budget_bytes)
            .finish()
    }
}

impl BlockFileSource {
    /// Opens a block file with a memory budget in bytes.
    ///
    /// Fails with [`DataError::InvalidParam`] if the budget does not fit
    /// one block (`block_rows · dim · 8` bytes), and with
    /// [`DataError::Format`] on a malformed or truncated file.
    pub fn open(path: impl AsRef<Path>, budget_bytes: u64) -> Result<Self, DataError> {
        let mut file = File::open(&path)?;
        let mut header = [0u8; HEADER_BYTES as usize];
        file.read_exact(&mut header)
            .map_err(|_| DataError::Format("file shorter than the 24-byte header".into()))?;
        if header[..8] != BLOCK_FILE_MAGIC {
            return Err(DataError::Format("bad magic (expected SKMBLK01)".into()));
        }
        let dim = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) as usize;
        let block_rows = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes")) as usize;
        let rows = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
        if dim == 0 || block_rows == 0 {
            return Err(DataError::Format(format!(
                "header declares dim={dim}, block_rows={block_rows} (both must be positive)"
            )));
        }
        let rows = usize::try_from(rows)
            .map_err(|_| DataError::Format(format!("row count {rows} exceeds usize")))?;
        // All header fields are untrusted: size arithmetic must be checked,
        // or a corrupt header panics (debug) / defeats the truncation check
        // via wraparound (release).
        let checked_bytes = |count: u64, what: &str| {
            count
                .checked_mul(dim as u64)
                .and_then(|v| v.checked_mul(8))
                .ok_or_else(|| {
                    DataError::Format(format!("header implies an impossibly large {what} size"))
                })
        };
        let expected = HEADER_BYTES
            .checked_add(checked_bytes(rows as u64, "payload")?)
            .ok_or_else(|| DataError::Format("header implies an impossibly large file".into()))?;
        let actual = file.metadata()?.len();
        if actual < expected {
            return Err(DataError::Format(format!(
                "payload truncated: {actual} bytes on disk, header implies {expected}"
            )));
        }
        let block_bytes = checked_bytes(block_rows as u64, "block")?;
        if budget_bytes < block_bytes {
            return Err(DataError::InvalidParam(format!(
                "memory budget {budget_bytes} B cannot hold one {block_bytes} B block \
                 ({block_rows} rows x {dim} dims)"
            )));
        }
        Ok(BlockFileSource {
            state: Mutex::new(ReaderState {
                file,
                cache: HashMap::new(),
                cache_bytes: 0,
                tick: 0,
                stats: Residency {
                    budget_bytes: Some(budget_bytes),
                    ..Residency::default()
                },
            }),
            rows,
            dim,
            block_rows,
            budget_bytes,
        })
    }

    /// The configured memory budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Total feature payload on disk in bytes (`rows · dim · 8`).
    pub fn payload_bytes(&self) -> u64 {
        (self.rows as u64) * (self.dim as u64) * 8
    }
}

impl ChunkedSource for BlockFileSource {
    fn len(&self) -> usize {
        self.rows
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn block_rows(&self) -> usize {
        self.block_rows
    }

    fn read_block(&self, block: usize, out: &mut PointMatrix) -> Result<(), DataError> {
        check_block_buffer(self.dim, out)?;
        let range = self.block_range(block);
        let values = range.len() * self.dim;
        let block_bytes = (values * 8) as u64;
        let mut state = self.state.lock().expect("BlockFileSource state poisoned");
        let state = &mut *state;
        state.tick += 1;

        out.clear();
        if let Some(entry) = state.cache.get_mut(&block) {
            // Hit: serve from cache and stamp most-recently-used.
            entry.tick = state.tick;
            out.extend_from_flat(&entry.data)?;
            state.stats.hits += 1;
        } else {
            // Miss: one seek, then stream-decode straight into `out`
            // through a small fixed staging buffer, so a miss never
            // materializes more than the caller's block copy (plus the
            // ≤64 KiB stage, excluded from the feature-byte accounting).
            let offset = HEADER_BYTES + (range.start as u64) * (self.dim as u64) * 8;
            state.file.seek(SeekFrom::Start(offset))?;
            let row_bytes = self.dim * 8;
            let stage_rows = (64 * 1024 / row_bytes).clamp(1, range.len());
            let mut raw = vec![0u8; stage_rows * row_bytes];
            let mut decoded: Vec<f64> = Vec::with_capacity(stage_rows * self.dim);
            let mut remaining = range.len();
            while remaining > 0 {
                let take = remaining.min(stage_rows);
                let chunk = &mut raw[..take * row_bytes];
                state.file.read_exact(chunk)?;
                decoded.clear();
                for bytes in chunk.chunks_exact(8) {
                    decoded.push(f64::from_le_bytes(bytes.try_into().expect("8 bytes")));
                }
                out.extend_from_flat(&decoded)?;
                remaining -= take;
            }
            state.stats.loads += 1;
            // Cache within budget: capacity is what remains after the
            // caller's working copy.
            let capacity = self.budget_bytes - ((self.block_rows * self.dim * 8) as u64);
            if block_bytes <= capacity {
                while state.cache_bytes + block_bytes > capacity {
                    let oldest = *state
                        .cache
                        .iter()
                        .min_by_key(|(_, e)| e.tick)
                        .expect("cache_bytes > 0 implies a cached entry")
                        .0;
                    let evicted = state.cache.remove(&oldest).expect("key just found");
                    state.cache_bytes -= (evicted.data.len() * 8) as u64;
                }
                state.cache_bytes += block_bytes;
                state.cache.insert(
                    block,
                    CacheEntry {
                        data: out.as_slice().to_vec(),
                        tick: state.tick,
                    },
                );
            }
        }
        let resident = state.cache_bytes + block_bytes;
        state.stats.peak_bytes = state.stats.peak_bytes.max(resident);
        debug_assert!(state.stats.peak_bytes <= self.budget_bytes);
        Ok(())
    }

    fn residency(&self) -> Residency {
        self.state
            .lock()
            .expect("BlockFileSource state poisoned")
            .stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::LabelColumn;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("kmeans_blockfile_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn matrix(n: usize, dim: usize) -> PointMatrix {
        PointMatrix::from_flat((0..n * dim).map(|i| (i as f64).sin()).collect(), dim).unwrap()
    }

    #[test]
    fn write_then_read_round_trips_bitwise() {
        let path = tmp("roundtrip.skmb");
        let m = matrix(23, 5);
        write_block_file(&path, &m, 4).unwrap();
        assert!(is_block_file(&path));
        let source = BlockFileSource::open(&path, 1 << 20).unwrap();
        assert_eq!(source.len(), 23);
        assert_eq!(source.dim(), 5);
        assert_eq!(source.num_blocks(), 6);
        let mut buf = source.block_buffer();
        for b in 0..source.num_blocks() {
            source.read_block(b, &mut buf).unwrap();
            let range = source.block_range(b);
            for (off, row) in buf.rows().enumerate() {
                assert_eq!(row, m.row(range.start + off), "row {}", range.start + off);
            }
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn budget_bounds_peak_residency() {
        let path = tmp("budget.skmb");
        let m = matrix(64, 4); // 2048 B payload
        write_block_file(&path, &m, 8).unwrap(); // 256 B per block
                                                 // Budget of two blocks: one working copy + one cached.
        let source = BlockFileSource::open(&path, 512).unwrap();
        let mut buf = source.block_buffer();
        for pass in 0..3 {
            for b in 0..source.num_blocks() {
                source.read_block(b, &mut buf).unwrap();
            }
            let r = source.residency();
            assert!(
                r.peak_bytes <= 512,
                "pass {pass}: peak {} exceeds budget",
                r.peak_bytes
            );
        }
        let r = source.residency();
        assert!(r.peak_bytes < source.payload_bytes());
        assert_eq!(r.budget_bytes, Some(512));
        assert!(r.loads > 0);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn cache_serves_repeated_reads() {
        let path = tmp("cache.skmb");
        let m = matrix(16, 2);
        write_block_file(&path, &m, 4).unwrap(); // 64 B per block
                                                 // Room for the working copy plus all four blocks.
        let source = BlockFileSource::open(&path, 64 * 5).unwrap();
        let mut buf = source.block_buffer();
        for _ in 0..3 {
            for b in 0..source.num_blocks() {
                source.read_block(b, &mut buf).unwrap();
            }
        }
        let r = source.residency();
        assert_eq!(r.loads, 4, "each block decoded once");
        assert_eq!(r.hits, 8, "subsequent passes served from cache");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn budget_smaller_than_a_block_is_rejected() {
        let path = tmp("tiny_budget.skmb");
        write_block_file(&path, &matrix(8, 2), 4).unwrap();
        assert!(matches!(
            BlockFileSource::open(&path, 63),
            Err(DataError::InvalidParam(_))
        ));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn malformed_files_are_rejected() {
        let path = tmp("bad_magic.skmb");
        std::fs::write(&path, b"NOTMAGIC________________").unwrap();
        assert!(matches!(
            BlockFileSource::open(&path, 1 << 20),
            Err(DataError::Format(_))
        ));
        assert!(!is_block_file(&path));

        let path = tmp("truncated.skmb");
        let m = matrix(8, 2);
        write_block_file(&path, &m, 4).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 8]).unwrap();
        assert!(matches!(
            BlockFileSource::open(&path, 1 << 20),
            Err(DataError::Format(_))
        ));

        let path = tmp("short.skmb");
        std::fs::write(&path, b"SKMB").unwrap();
        assert!(matches!(
            BlockFileSource::open(&path, 1 << 20),
            Err(DataError::Format(_))
        ));

        // Regression: adversarial header sizes must be rejected with a
        // typed error, never overflow (debug panic / wrapped truncation
        // check in release).
        let path = tmp("overflow.skmb");
        let mut header = Vec::new();
        header.extend_from_slice(&BLOCK_FILE_MAGIC);
        header.extend_from_slice(&8u32.to_le_bytes()); // dim
        header.extend_from_slice(&u32::MAX.to_le_bytes()); // block_rows
        header.extend_from_slice(&(1u64 << 61).to_le_bytes()); // rows
        std::fs::write(&path, &header).unwrap();
        assert!(matches!(
            BlockFileSource::open(&path, u64::MAX),
            Err(DataError::Format(_))
        ));
    }

    #[test]
    fn failed_conversion_leaves_no_stale_output() {
        let csv = tmp("stale.csv");
        std::fs::write(&csv, "1,2\n3,4\nbroken,row\n").unwrap();
        let out = tmp("stale.skmb");
        assert!(matches!(
            csv_to_block_file(&csv, &out, 2, LabelColumn::None),
            Err(DataError::Parse { line: 3, .. })
        ));
        assert!(
            !out.exists(),
            "half-written block file left behind after a failed conversion"
        );
        std::fs::remove_file(csv).unwrap();
    }

    #[test]
    fn writer_rejects_bad_rows_and_params() {
        assert!(BlockFileWriter::create(tmp("bad.skmb"), 0, 4).is_err());
        assert!(BlockFileWriter::create(tmp("bad.skmb"), 2, 0).is_err());
        let mut w = BlockFileWriter::create(tmp("dims.skmb"), 2, 4).unwrap();
        assert!(matches!(
            w.push_row(&[1.0]),
            Err(DataError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn csv_conversion_streams_and_round_trips() {
        let csv = tmp("convert.csv");
        std::fs::write(&csv, "x,y,label\n1,2,0\n3,4,1\n5,6,0\n").unwrap();
        let out = tmp("convert.skmb");
        let (rows, dim) = csv_to_block_file(&csv, &out, 2, LabelColumn::Last).unwrap();
        assert_eq!((rows, dim), (3, 2));
        let source = BlockFileSource::open(&out, 1 << 20).unwrap();
        assert_eq!(source.len(), 3);
        let mut buf = source.block_buffer();
        source.read_block(1, &mut buf).unwrap();
        assert_eq!(buf.row(0), &[5.0, 6.0]);
        std::fs::remove_file(csv).unwrap();
        std::fs::remove_file(out).unwrap();
    }
}
