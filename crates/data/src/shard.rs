//! Sharding a block file across distributed workers: `skm shard`.
//!
//! The distributed runtime (`kmeans-cluster`) assigns each worker one
//! **contiguous** range of global rows, served from a worker-local
//! `SKMBLK01` block file. [`shard_block_file`] splits one block file into
//! per-worker shard files in a single streaming pass, and records the
//! split in a [`ShardManifest`] so launch scripts (and the coordinator's
//! optional cross-check) know which file holds which rows.
//!
//! **Alignment.** Bit-parity across worker counts requires every worker
//! boundary to sit on the executor's logical shard grid — that is what
//! lets per-shard RNG streams and shard-ordered floating-point folds
//! decompose over workers without changing a single bit (see
//! `docs/ARCHITECTURE.md`, "Distributed layer"). `align` is therefore a
//! first-class parameter here: every shard except the last holds a
//! multiple of `align` rows. The default executor shard size (8192) is the
//! natural choice.

use crate::blockfile::{BlockFileSource, BlockFileWriter};
use crate::chunked::ChunkedSource;
use crate::error::DataError;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// First line of a manifest file.
const MANIFEST_MAGIC: &str = "SKMSHARD01";

/// One worker's shard in a [`ShardManifest`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardEntry {
    /// Path of the shard's block file (as written; typically relative to
    /// wherever the manifest lives).
    pub path: String,
    /// Global index of the shard's first row.
    pub start_row: usize,
    /// Number of rows in the shard.
    pub rows: usize,
}

/// The record of one [`shard_block_file`] split: global shape, the
/// alignment every boundary honors, and the per-worker shards in row
/// order (worker `i` of `skm fit --distributed --workers ...` must serve
/// `shards[i]`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardManifest {
    /// Row dimensionality.
    pub dim: usize,
    /// Total rows across all shards.
    pub total_rows: usize,
    /// Row alignment of every shard boundary.
    pub align: usize,
    /// The shards, in global row order.
    pub shards: Vec<ShardEntry>,
}

impl ShardManifest {
    /// Serializes the manifest to a small line-oriented text file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DataError> {
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(out, "{MANIFEST_MAGIC}")?;
        writeln!(out, "dim {}", self.dim)?;
        writeln!(out, "rows {}", self.total_rows)?;
        writeln!(out, "align {}", self.align)?;
        for s in &self.shards {
            writeln!(out, "shard {} {} {}", s.start_row, s.rows, s.path)?;
        }
        out.flush()?;
        Ok(())
    }

    /// Parses a manifest written by [`ShardManifest::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, DataError> {
        let reader = BufReader::new(std::fs::File::open(path)?);
        let mut lines = reader.lines();
        let bad = |line: usize, message: &str| DataError::Parse {
            line,
            message: message.to_string(),
        };
        let first = lines.next().ok_or_else(|| bad(1, "empty manifest"))??;
        if first.trim() != MANIFEST_MAGIC {
            return Err(bad(1, "not a shard manifest (bad magic)"));
        }
        let mut dim = None;
        let mut total_rows = None;
        let mut align = None;
        let mut shards = Vec::new();
        for (no, line) in lines.enumerate() {
            let line_no = no + 2;
            let line = line?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let key = parts.next().unwrap_or("");
            let mut field = |what: &str| -> Result<usize, DataError> {
                parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad(line_no, &format!("bad {what}")))
            };
            match key {
                "dim" => dim = Some(field("dim")?),
                "rows" => total_rows = Some(field("rows")?),
                "align" => align = Some(field("align")?),
                "shard" => {
                    let start_row = field("shard start")?;
                    let rows = field("shard rows")?;
                    let path: String = parts.collect::<Vec<_>>().join(" ");
                    if path.is_empty() {
                        return Err(bad(line_no, "shard entry missing path"));
                    }
                    shards.push(ShardEntry {
                        path,
                        start_row,
                        rows,
                    });
                }
                other => return Err(bad(line_no, &format!("unknown manifest key '{other}'"))),
            }
        }
        let manifest = ShardManifest {
            dim: dim.ok_or_else(|| bad(1, "manifest missing dim"))?,
            total_rows: total_rows.ok_or_else(|| bad(1, "manifest missing rows"))?,
            align: align.ok_or_else(|| bad(1, "manifest missing align"))?,
            shards,
        };
        manifest.validate()?;
        Ok(manifest)
    }

    /// Checks internal consistency: shards contiguous from row 0, row
    /// counts summing to the total, boundaries aligned.
    pub fn validate(&self) -> Result<(), DataError> {
        let mut next = 0usize;
        for (i, s) in self.shards.iter().enumerate() {
            if s.start_row != next {
                return Err(DataError::InvalidParam(format!(
                    "shard {i} starts at row {}, expected {next} (shards must be contiguous)",
                    s.start_row
                )));
            }
            if s.rows == 0 {
                return Err(DataError::InvalidParam(format!("shard {i} is empty")));
            }
            if self.align == 0 || s.start_row % self.align != 0 {
                return Err(DataError::InvalidParam(format!(
                    "shard {i} starts at row {} which is not a multiple of align {}",
                    s.start_row, self.align
                )));
            }
            next += s.rows;
        }
        if next != self.total_rows {
            return Err(DataError::InvalidParam(format!(
                "shard rows sum to {next}, manifest declares {}",
                self.total_rows
            )));
        }
        Ok(())
    }
}

/// Splits a block file into `workers` contiguous per-worker shard files in
/// one streaming pass (only one block of the input is ever resident), and
/// returns the manifest describing the split. Shard files are written as
/// `{out_prefix}-{i}.skmb` and the manifest as `{out_prefix}.manifest`.
///
/// Every shard except the last holds a multiple of `align` rows — the
/// boundary contract the distributed coordinator validates (see module
/// docs). Fails if the input cannot give every worker at least one
/// aligned row range (`rows ≤ (workers − 1) · align`).
pub fn shard_block_file(
    input: impl AsRef<Path>,
    out_prefix: &str,
    workers: usize,
    align: usize,
) -> Result<ShardManifest, DataError> {
    if workers == 0 {
        return Err(DataError::InvalidParam("workers must be positive".into()));
    }
    if align == 0 {
        return Err(DataError::InvalidParam("align must be positive".into()));
    }
    let source = {
        // A budget of exactly one block: the split streams.
        let probe = BlockFileSource::open(&input, u64::MAX / 2)?;
        let block_bytes = (probe.block_rows() * probe.dim() * 8) as u64;
        drop(probe);
        BlockFileSource::open(&input, block_bytes)?
    };
    let n = source.len();
    let dim = source.dim();
    // Per-worker target: even split, rounded up to the alignment. The last
    // worker absorbs the remainder (and the tail misalignment).
    let per_worker = n.div_ceil(workers).div_ceil(align) * align;
    if n <= (workers - 1) * per_worker {
        return Err(DataError::InvalidParam(format!(
            "cannot split {n} rows into {workers} shards of {align}-row aligned ranges; \
             reduce --workers or --align"
        )));
    }

    let mut shards = Vec::with_capacity(workers);
    let mut writers: Vec<(PathBuf, BlockFileWriter)> = Vec::with_capacity(workers);
    for w in 0..workers {
        let start = w * per_worker;
        let rows = per_worker.min(n - start);
        let path = PathBuf::from(format!("{out_prefix}-{w}.skmb"));
        writers.push((
            path.clone(),
            BlockFileWriter::create(&path, dim, source.block_rows())?,
        ));
        shards.push(ShardEntry {
            path: path.to_string_lossy().into_owned(),
            start_row: start,
            rows,
        });
    }

    let result = (|| -> Result<(), DataError> {
        let mut buf = source.block_buffer();
        let mut row = 0usize;
        for b in 0..source.num_blocks() {
            source.read_block(b, &mut buf)?;
            for r in buf.rows() {
                let w = (row / per_worker).min(workers - 1);
                writers[w].1.push_row(r)?;
                row += 1;
            }
        }
        Ok(())
    })();
    if let Err(e) = result {
        // Never leave half-written shard files behind.
        for (path, _) in &writers {
            let _ = std::fs::remove_file(path);
        }
        return Err(e);
    }
    for (_, writer) in writers {
        writer.finish()?;
    }

    let manifest = ShardManifest {
        dim,
        total_rows: n,
        align,
        shards,
    };
    manifest.save(format!("{out_prefix}.manifest"))?;
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockfile::write_block_file;
    use crate::matrix::PointMatrix;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("kmeans_shard_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn matrix(n: usize, dim: usize) -> PointMatrix {
        PointMatrix::from_flat((0..n * dim).map(|i| i as f64 * 0.25).collect(), dim).unwrap()
    }

    #[test]
    fn split_round_trips_and_aligns() {
        let m = matrix(100, 3);
        let input = tmp("split.skmb");
        write_block_file(&input, &m, 16).unwrap();
        let prefix = tmp("split_out").to_string_lossy().into_owned();
        let manifest = shard_block_file(&input, &prefix, 3, 8).unwrap();
        assert_eq!(manifest.total_rows, 100);
        assert_eq!(manifest.dim, 3);
        assert_eq!(manifest.shards.len(), 3);
        // 100/3 → 34 → aligned up to 40; shards are 40, 40, 20.
        assert_eq!(
            manifest.shards.iter().map(|s| s.rows).collect::<Vec<_>>(),
            vec![40, 40, 20]
        );
        manifest.validate().unwrap();
        // Concatenating the shard files reproduces the input bit for bit.
        let mut seen = 0usize;
        for s in &manifest.shards {
            let src = BlockFileSource::open(&s.path, 1 << 20).unwrap();
            assert_eq!(src.len(), s.rows);
            let mut buf = src.block_buffer();
            for b in 0..src.num_blocks() {
                src.read_block(b, &mut buf).unwrap();
                for row in buf.rows() {
                    assert_eq!(row, m.row(seen), "row {seen}");
                    seen += 1;
                }
            }
        }
        assert_eq!(seen, 100);
        // Manifest round-trips through save/load.
        let loaded = ShardManifest::load(format!("{prefix}.manifest")).unwrap();
        assert_eq!(loaded, manifest);
    }

    #[test]
    fn split_rejects_impossible_requests() {
        let m = matrix(10, 2);
        let input = tmp("small.skmb");
        write_block_file(&input, &m, 4).unwrap();
        let prefix = tmp("small_out").to_string_lossy().into_owned();
        // 10 rows cannot give 3 workers an 8-aligned range each.
        assert!(matches!(
            shard_block_file(&input, &prefix, 3, 8),
            Err(DataError::InvalidParam(_))
        ));
        assert!(shard_block_file(&input, &prefix, 0, 8).is_err());
        assert!(shard_block_file(&input, &prefix, 2, 0).is_err());
    }

    #[test]
    fn manifest_validation_catches_corruption() {
        let good = ShardManifest {
            dim: 2,
            total_rows: 16,
            align: 8,
            shards: vec![
                ShardEntry {
                    path: "a.skmb".into(),
                    start_row: 0,
                    rows: 8,
                },
                ShardEntry {
                    path: "b.skmb".into(),
                    start_row: 8,
                    rows: 8,
                },
            ],
        };
        good.validate().unwrap();
        let mut gap = good.clone();
        gap.shards[1].start_row = 9;
        assert!(gap.validate().is_err());
        let mut short = good.clone();
        short.total_rows = 20;
        assert!(short.validate().is_err());
        let mut misaligned = good.clone();
        misaligned.align = 5;
        assert!(misaligned.validate().is_err());
    }

    #[test]
    fn manifest_load_rejects_garbage() {
        let p = tmp("bad.manifest");
        std::fs::write(&p, "NOTAMANIFEST\n").unwrap();
        assert!(matches!(
            ShardManifest::load(&p),
            Err(DataError::Parse { .. })
        ));
        std::fs::write(&p, "SKMSHARD01\ndim 2\nrows x\n").unwrap();
        assert!(ShardManifest::load(&p).is_err());
    }
}
