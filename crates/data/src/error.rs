//! Error type for dataset construction and I/O.

use std::fmt;

/// Errors produced by the data layer.
#[derive(Debug)]
pub enum DataError {
    /// A row's dimensionality differs from the matrix's.
    DimensionMismatch {
        /// Dimensionality of the container.
        expected: usize,
        /// Dimensionality of the offending row.
        got: usize,
    },
    /// An operation that requires data was given none.
    Empty,
    /// A flat buffer's length is not a multiple of the dimension.
    RaggedBuffer {
        /// Buffer length supplied.
        len: usize,
        /// Dimension supplied.
        dim: usize,
    },
    /// The number of labels does not match the number of points.
    LabelCountMismatch {
        /// Number of points.
        points: usize,
        /// Number of labels.
        labels: usize,
    },
    /// An invalid generator or transform parameter.
    InvalidParam(String),
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A CSV cell failed to parse.
    Parse {
        /// 1-based line number in the file.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// A binary block file is malformed (bad magic, truncated payload,
    /// inconsistent header).
    Format(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            DataError::Empty => write!(f, "operation requires a non-empty dataset"),
            DataError::RaggedBuffer { len, dim } => {
                write!(
                    f,
                    "flat buffer of length {len} is not a multiple of dim {dim}"
                )
            }
            DataError::LabelCountMismatch { points, labels } => {
                write!(f, "{labels} labels for {points} points")
            }
            DataError::InvalidParam(msg) => write!(f, "invalid parameter: {msg}"),
            DataError::Io(e) => write!(f, "i/o error: {e}"),
            DataError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            DataError::Format(msg) => write!(f, "invalid block file: {msg}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DataError::DimensionMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("expected 3"));
        assert!(DataError::Empty.to_string().contains("non-empty"));
        let e = DataError::Parse {
            line: 7,
            message: "bad float".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let io = DataError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().contains("gone"));
        assert!(DataError::Format("bad magic".into())
            .to_string()
            .contains("bad magic"));
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let io = DataError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.source().is_some());
        assert!(DataError::Empty.source().is_none());
    }
}
