//! Experiment harness regenerating **every table and figure** of
//! *Scalable K-Means++* (VLDB 2012).
//!
//! One binary per artifact (see DESIGN.md §5 for the full index):
//!
//! | Binary   | Paper artifact |
//! |----------|----------------|
//! | `table1` | Table 1 — GaussMixture, k = 50, seed/final cost |
//! | `table2` | Table 2 — Spam, k ∈ {20, 50, 100}, seed/final cost |
//! | `table3` | Table 3 — KDD, clustering cost |
//! | `table4` | Table 4 — KDD, running time |
//! | `table5` | Table 5 — KDD, intermediate centers before reclustering |
//! | `table6` | Table 6 — Spam, Lloyd iterations to convergence |
//! | `fig5_1` | Figure 5.1 — cost vs rounds × ℓ/k on 10 % KDD sample |
//! | `fig5_2` | Figure 5.2 — cost vs rounds on GaussMixture |
//! | `fig5_3` | Figure 5.3 — cost vs rounds on Spam |
//! | `run_all`| everything above, writing TSVs to `target/experiments/` |
//!
//! Every binary accepts `--runs`, `--seed`, `--threads`, dataset scaling
//! flags, and `--full` (paper-scale workloads). Defaults are laptop-scale;
//! EXPERIMENTS.md records which scales produced the committed results.
//!
//! Criterion micro-benches (`cargo bench`) cover the distance kernel,
//! seeding methods, Lloyd throughput, sampling strategies, and the
//! per-round cost of k-means|| (ablation A3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod bench_json;
pub mod chart;
pub mod exp;
pub mod format;
pub mod kdd;
pub mod run;

pub use args::Args;
pub use format::Table;
pub use run::{Method, RunOutcome};
