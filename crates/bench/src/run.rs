//! Uniform experiment driver: one [`Method`] = one row family in the
//! paper's tables; one [`RunOutcome`] = every quantity any table reports.

use kmeans_core::cost::potential;
use kmeans_core::init::{InitMethod, KMeansParallelConfig, SamplingMode};
use kmeans_core::lloyd::{lloyd, LloydConfig};
use kmeans_data::PointMatrix;
use kmeans_par::Executor;
use kmeans_streaming::partition::{partition_init, PartitionConfig};
use kmeans_util::stats::median;
use kmeans_util::timing::Stopwatch;

/// An initialization strategy under comparison.
#[derive(Clone, Debug)]
pub enum Method {
    /// Uniform seeding.
    Random,
    /// Algorithm 1.
    KMeansPlusPlus,
    /// Algorithm 2 with the given oversampling factor ℓ/k, round count,
    /// and sampling mode.
    KMeansParallel {
        /// ℓ as a multiple of k.
        factor: f64,
        /// Number of rounds r.
        rounds: usize,
        /// Bernoulli (Algorithm 2) or exact-ℓ (§5.3 / Figure 5.1).
        mode: SamplingMode,
    },
    /// The streaming baseline of §4.2.1.
    Partition,
}

impl Method {
    /// Row label in the paper's style.
    pub fn label(&self) -> String {
        match self {
            Method::Random => "Random".into(),
            Method::KMeansPlusPlus => "k-means++".into(),
            Method::KMeansParallel { factor, rounds, .. } => {
                format!("k-means|| l={factor}k r={rounds}")
            }
            Method::Partition => "Partition".into(),
        }
    }

    /// The paper's k-means|| grid entry `ℓ/k = factor`, `r = 5` (with the
    /// paper's exception: `r = 15` when `ℓ = 0.1k`, so that `r·ℓ ≥ k`).
    pub fn parallel_grid(factor: f64) -> Method {
        let rounds = if factor < 0.5 { 15 } else { 5 };
        Method::KMeansParallel {
            factor,
            rounds,
            mode: SamplingMode::Bernoulli,
        }
    }
}

/// Everything a single (method, k, seed) run produces.
#[derive(Clone, Copy, Debug)]
pub struct RunOutcome {
    /// Potential right after seeding (the "seed" columns).
    pub seed_cost: f64,
    /// Potential after Lloyd (the "final" columns).
    pub final_cost: f64,
    /// Lloyd iterations executed (Table 6).
    pub lloyd_iterations: usize,
    /// Intermediate centers before reclustering (Table 5).
    pub candidates: usize,
    /// Seeding wall time in seconds.
    pub init_secs: f64,
    /// Lloyd wall time in seconds.
    pub lloyd_secs: f64,
}

impl RunOutcome {
    /// Total wall time (Table 4's quantity).
    pub fn total_secs(&self) -> f64 {
        self.init_secs + self.lloyd_secs
    }
}

/// Runs `method` end-to-end (seed + Lloyd) once.
///
/// # Panics
///
/// Panics if the underlying algorithms reject the configuration — the
/// experiment grids are all valid by construction.
pub fn run_once(
    method: &Method,
    points: &PointMatrix,
    k: usize,
    seed: u64,
    lloyd_config: &LloydConfig,
    exec: &Executor,
) -> RunOutcome {
    let (centers, candidates, init_secs, seed_cost) = match method {
        Method::Random | Method::KMeansPlusPlus | Method::KMeansParallel { .. } => {
            let init_method = match method {
                Method::Random => InitMethod::Random,
                Method::KMeansPlusPlus => InitMethod::KMeansPlusPlus,
                Method::KMeansParallel {
                    factor,
                    rounds,
                    mode,
                } => InitMethod::KMeansParallel(
                    KMeansParallelConfig::default()
                        .oversampling_factor(*factor)
                        .rounds(*rounds)
                        .sampling(*mode),
                ),
                Method::Partition => unreachable!(),
            };
            let result = init_method
                .run(points, k, seed, exec)
                .expect("valid experiment configuration");
            (
                result.centers,
                result.stats.candidates,
                result.stats.duration.as_secs_f64(),
                result.stats.seed_cost,
            )
        }
        Method::Partition => {
            let sw = Stopwatch::start();
            let result = partition_init(points, k, &PartitionConfig::default(), seed, exec)
                .expect("valid experiment configuration");
            let secs = sw.elapsed().as_secs_f64();
            let seed_cost = potential(points, &result.centers, exec);
            (result.centers, result.intermediate_centers, secs, seed_cost)
        }
    };

    let sw = Stopwatch::start();
    let result = lloyd(points, &centers, lloyd_config, exec).expect("valid Lloyd configuration");
    let lloyd_secs = sw.elapsed().as_secs_f64();
    RunOutcome {
        seed_cost,
        final_cost: result.cost,
        lloyd_iterations: result.iterations,
        candidates,
        init_secs,
        lloyd_secs,
    }
}

/// Aggregate of repeated runs: medians for costs (the paper reports
/// medians over 11 runs), means for iteration counts and times (Table 6
/// averages over 10 runs; times are means).
#[derive(Clone, Copy, Debug)]
pub struct Aggregate {
    /// Median seed cost.
    pub seed_cost: f64,
    /// Median final cost.
    pub final_cost: f64,
    /// Mean Lloyd iterations.
    pub lloyd_iterations: f64,
    /// Median candidate count.
    pub candidates: f64,
    /// Mean total seconds.
    pub total_secs: f64,
    /// Mean init seconds.
    pub init_secs: f64,
}

/// Runs `method` `runs` times with seeds `base_seed..base_seed+runs`.
pub fn run_many(
    method: &Method,
    points: &PointMatrix,
    k: usize,
    runs: usize,
    base_seed: u64,
    lloyd_config: &LloydConfig,
    exec: &Executor,
) -> Aggregate {
    assert!(runs > 0, "need at least one run");
    let outcomes: Vec<RunOutcome> = (0..runs)
        .map(|r| run_once(method, points, k, base_seed + r as u64, lloyd_config, exec))
        .collect();
    let collect = |f: fn(&RunOutcome) -> f64| -> Vec<f64> { outcomes.iter().map(f).collect() };
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    Aggregate {
        seed_cost: median(&collect(|o| o.seed_cost)).expect("non-empty"),
        final_cost: median(&collect(|o| o.final_cost)).expect("non-empty"),
        lloyd_iterations: mean(&collect(|o| o.lloyd_iterations as f64)),
        candidates: median(&collect(|o| o.candidates as f64)).expect("non-empty"),
        total_secs: mean(&collect(|o| o.total_secs())),
        init_secs: mean(&collect(|o| o.init_secs)),
    }
}

/// Builds the executor every binary uses from `--threads` (0 = auto).
pub fn executor_from_threads(threads: usize) -> Executor {
    if threads == 0 {
        Executor::new(kmeans_par::Parallelism::Auto)
    } else {
        Executor::new(kmeans_par::Parallelism::Threads(threads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> PointMatrix {
        let mut m = PointMatrix::new(1);
        for c in [0.0, 1e3, 2e3] {
            for i in 0..60 {
                m.push(&[c + i as f64 * 0.01]).unwrap();
            }
        }
        m
    }

    #[test]
    fn run_once_outcome_is_consistent() {
        let points = blobs();
        let exec = Executor::sequential();
        for method in [
            Method::Random,
            Method::KMeansPlusPlus,
            Method::parallel_grid(2.0),
            Method::Partition,
        ] {
            let o = run_once(&method, &points, 3, 1, &LloydConfig::default(), &exec);
            assert!(o.seed_cost > 0.0, "{method:?}");
            assert!(
                o.final_cost <= o.seed_cost + 1e-9,
                "{method:?}: Lloyd made things worse"
            );
            assert!(o.lloyd_iterations >= 1);
            assert!(o.candidates >= 3);
            assert!(o.total_secs() >= o.init_secs);
        }
    }

    #[test]
    fn parallel_grid_matches_paper_rounds_rule() {
        match Method::parallel_grid(0.1) {
            Method::KMeansParallel { rounds, .. } => assert_eq!(rounds, 15),
            _ => unreachable!(),
        }
        match Method::parallel_grid(2.0) {
            Method::KMeansParallel { rounds, .. } => assert_eq!(rounds, 5),
            _ => unreachable!(),
        }
    }

    #[test]
    fn labels_read_like_the_paper() {
        assert_eq!(Method::Random.label(), "Random");
        assert_eq!(Method::KMeansPlusPlus.label(), "k-means++");
        assert_eq!(Method::parallel_grid(0.5).label(), "k-means|| l=0.5k r=5");
        assert_eq!(Method::Partition.label(), "Partition");
    }

    #[test]
    fn run_many_aggregates() {
        let points = blobs();
        let exec = Executor::sequential();
        let agg = run_many(
            &Method::KMeansPlusPlus,
            &points,
            3,
            5,
            0,
            &LloydConfig::default(),
            &exec,
        );
        assert!(agg.final_cost <= agg.seed_cost + 1e-9);
        assert!(agg.lloyd_iterations >= 1.0);
        assert!(agg.total_secs >= agg.init_secs);
    }
}
