//! See `kmeans_bench::exp::table5` for the experiment definition.
fn main() {
    kmeans_bench::exp::table5::run(&kmeans_bench::Args::parse());
}
