//! See `kmeans_bench::exp::table4` for the experiment definition.
fn main() {
    kmeans_bench::exp::table4::run(&kmeans_bench::Args::parse());
}
