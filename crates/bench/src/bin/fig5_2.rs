//! See `kmeans_bench::exp::fig5_2` for the experiment definition.
fn main() {
    kmeans_bench::exp::fig5_2::run(&kmeans_bench::Args::parse());
}
