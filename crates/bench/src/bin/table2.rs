//! See `kmeans_bench::exp::table2` for the experiment definition.
fn main() {
    kmeans_bench::exp::table2::run(&kmeans_bench::Args::parse());
}
