//! See `kmeans_bench::exp::table1` for the experiment definition.
fn main() {
    kmeans_bench::exp::table1::run(&kmeans_bench::Args::parse());
}
