//! Regenerates every table and figure of the paper in one go, writing TSV
//! artifacts to `target/experiments/`. The shared KDD grid behind
//! Tables 3–5 is computed once.
use kmeans_bench::exp;
use kmeans_bench::kdd::{run_matrix, KddMatrixConfig};
use kmeans_bench::Args;

fn main() {
    let args = Args::parse();
    let sw = kmeans_util::timing::Stopwatch::start();

    eprintln!("=== Table 1 ===");
    exp::table1::run(&args);
    eprintln!("=== Table 2 ===");
    exp::table2::run(&args);

    eprintln!("=== Tables 3-5 (shared KDD grid) ===");
    let config = KddMatrixConfig::from_args(&args);
    let cells = run_matrix(&config);
    exp::emit(&exp::table3::table_from_cells(&cells, &config), "table3");
    exp::emit(&exp::table4::table_from_cells(&cells, &config), "table4");
    exp::emit(&exp::table5::table_from_cells(&cells, &config), "table5");

    eprintln!("=== Table 6 ===");
    exp::table6::run(&args);
    eprintln!("=== Figure 5.1 ===");
    exp::fig5_1::run(&args);
    eprintln!("=== Figure 5.2 ===");
    exp::fig5_2::run(&args);
    eprintln!("=== Figure 5.3 ===");
    exp::fig5_3::run(&args);

    eprintln!(
        "run_all complete in {} — artifacts in target/experiments/",
        kmeans_util::timing::format_duration(sw.elapsed())
    );
}
