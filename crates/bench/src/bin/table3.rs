//! See `kmeans_bench::exp::table3` for the experiment definition.
fn main() {
    kmeans_bench::exp::table3::run(&kmeans_bench::Args::parse());
}
