//! See `kmeans_bench::exp::fig5_1` for the experiment definition.
fn main() {
    kmeans_bench::exp::fig5_1::run(&kmeans_bench::Args::parse());
}
