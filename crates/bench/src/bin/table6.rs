//! See `kmeans_bench::exp::table6` for the experiment definition.
fn main() {
    kmeans_bench::exp::table6::run(&kmeans_bench::Args::parse());
}
