//! See `kmeans_bench::exp::fig5_3` for the experiment definition.
fn main() {
    kmeans_bench::exp::fig5_3::run(&kmeans_bench::Args::parse());
}
