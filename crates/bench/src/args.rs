//! Re-export of the shared workspace CLI parser.

pub use kmeans_util::cli::Args;
