//! Table rendering (aligned text + TSV artifacts) and number formatting.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A simple column-aligned table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the column count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{cell:>w$}", w = w));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.columns, &widths));
        out.push_str(&format!(
            "{}\n",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
        ));
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Renders tab-separated values (header + rows).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join("\t"));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Writes the TSV artifact as `<dir>/<name>.tsv`, creating `dir`.
    pub fn write_tsv(&self, dir: impl AsRef<Path>, name: &str) -> std::io::Result<PathBuf> {
        fs::create_dir_all(&dir)?;
        let path = dir.as_ref().join(format!("{name}.tsv"));
        let mut file = fs::File::create(&path)?;
        file.write_all(self.to_tsv().as_bytes())?;
        Ok(path)
    }
}

/// Default artifact directory for experiment outputs.
pub fn experiments_dir() -> PathBuf {
    PathBuf::from("target/experiments")
}

/// Formats a cost to three significant figures, using scientific notation
/// outside `[0.01, 10_000)` — the way the paper's tables read.
pub fn fmt_cost(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if (0.01..10_000.0).contains(&a) {
        let digits = 3usize.saturating_sub((a.log10().floor() as i32 + 1).max(0) as usize);
        format!("{v:.digits$}")
    } else {
        format!("{v:.2e}")
    }
}

/// Formats `v / 10^scale_pow` to the paper's "scaled down by 10^s" style.
pub fn fmt_scaled(v: f64, scale_pow: i32) -> String {
    fmt_cost(v / 10f64.powi(scale_pow))
}

/// Formats seconds compactly.
pub fn fmt_secs(secs: f64) -> String {
    kmeans_util::timing::format_duration(std::time::Duration::from_secs_f64(secs.max(0.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T", &["method", "cost"]);
        t.add_row(vec!["random".into(), "14".into()]);
        t.add_row(vec!["k-means||".into(), "7".into()]);
        let s = t.render();
        assert!(s.contains("== T =="));
        let lines: Vec<&str> = s.lines().collect();
        // All data lines equal length (aligned).
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn row_arity_checked() {
        Table::new("T", &["a", "b"]).add_row(vec!["x".into()]);
    }

    #[test]
    fn tsv_round_trip() {
        let mut t = Table::new("T", &["a", "b"]);
        t.add_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_tsv(), "a\tb\n1\t2\n");
        let dir = std::env::temp_dir().join("kmeans_bench_fmt_test");
        let path = t.write_tsv(&dir, "t").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a\tb\n1\t2\n");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn cost_formatting() {
        assert_eq!(fmt_cost(0.0), "0");
        assert_eq!(fmt_cost(14.0), "14.0");
        assert_eq!(fmt_cost(233.0), "233");
        assert_eq!(fmt_cost(1234.0), "1234");
        assert!(fmt_cost(6.8e7).contains('e'));
        assert!(fmt_cost(0.001).contains('e'));
        assert_eq!(fmt_scaled(1.4e5, 4), "14.0");
    }
}
