//! Terminal rendering of the paper's figures: log-y scatter charts of
//! cost-versus-rounds series, one symbol per ℓ/k configuration.
//!
//! The paper's Figures 5.1–5.3 are log-scale line plots; an 80-column
//! approximation of the same series makes the reproduced shape visible
//! directly in the experiment output without any plotting dependency.

/// One named series of `(x, y)` points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points (y must be positive for log-scale rendering).
    pub points: Vec<(f64, f64)>,
}

/// Plot symbols assigned to series in order.
const SYMBOLS: &[char] = &['o', '+', 'x', '*', '#', '@', '%'];

/// Renders series as a log₁₀-y ASCII chart of the given plot size.
///
/// Returns a ready-to-print string (bordered plot area, y-axis tick
/// labels, x range line, legend). Series with non-positive y values have
/// those points skipped. Returns a short message when nothing is
/// plottable.
pub fn render_log_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for s in series {
        for &(x, y) in &s.points {
            if y > 0.0 && y.is_finite() && x.is_finite() {
                xs.push(x);
                ys.push(y.log10());
            }
        }
    }
    if xs.is_empty() {
        return format!("{title}\n(no plottable points)\n");
    }
    let (x_min, x_max) = min_max(&xs);
    let (y_min, y_max) = min_max(&ys);
    let x_span = (x_max - x_min).max(1e-12);
    let y_span = (y_max - y_min).max(1e-12);

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let symbol = SYMBOLS[si % SYMBOLS.len()];
        for &(x, y) in &s.points {
            if !(y > 0.0 && y.is_finite() && x.is_finite()) {
                continue;
            }
            let col = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
            let row = (((y.log10() - y_min) / y_span) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row; // y grows upward
                                        // First-come rendering; overlaps show the earlier series.
            if grid[row][col] == ' ' {
                grid[row][col] = symbol;
            }
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (r, row) in grid.iter().enumerate() {
        // Tick label on the top, middle, and bottom rows.
        let frac = 1.0 - r as f64 / (height - 1) as f64;
        let label = if r == 0 || r == height - 1 || r == (height - 1) / 2 {
            format!("{:>9.2e}", 10f64.powf(y_min + frac * y_span))
        } else {
            " ".repeat(9)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(9));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{:>10}x: {} .. {}\n",
        "",
        fmt_num(x_min),
        fmt_num(x_max)
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "{:>10}{} = {}\n",
            "",
            SYMBOLS[si % SYMBOLS.len()],
            s.label
        ));
    }
    out
}

fn min_max(values: &[f64]) -> (f64, f64) {
    values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        })
}

fn fmt_num(v: f64) -> String {
    if v == v.round() && v.abs() < 1e6 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(points: Vec<(f64, f64)>) -> Series {
        Series {
            label: "test".into(),
            points,
        }
    }

    #[test]
    fn renders_extremes_at_opposite_rows() {
        let s = series(vec![(1.0, 1e3), (10.0, 1e9)]);
        let chart = render_log_chart("t", &[s], 40, 8);
        let lines: Vec<&str> = chart.lines().collect();
        // Title, 8 grid rows, axis, x-range, legend.
        assert_eq!(lines[0], "t");
        assert!(lines[1].contains('o'), "top row holds the max: {chart}");
        assert!(lines[8].contains('o'), "bottom row holds the min: {chart}");
        assert!(chart.contains("x: 1 .. 10"));
        assert!(chart.contains("o = test"));
        // Tick labels reflect the log range.
        assert!(lines[1].contains("1.00e9"));
        assert!(lines[8].contains("1.00e3"));
    }

    #[test]
    fn multiple_series_use_distinct_symbols() {
        let a = Series {
            label: "a".into(),
            points: vec![(1.0, 10.0), (2.0, 20.0)],
        };
        let b = Series {
            label: "b".into(),
            points: vec![(1.0, 100.0), (2.0, 200.0)],
        };
        let chart = render_log_chart("t", &[a, b], 30, 6);
        assert!(chart.contains('o'));
        assert!(chart.contains('+'));
        assert!(chart.contains("o = a"));
        assert!(chart.contains("+ = b"));
    }

    #[test]
    fn skips_non_positive_and_handles_empty() {
        let s = series(vec![(1.0, 0.0), (2.0, -5.0)]);
        let chart = render_log_chart("t", &[s], 30, 6);
        assert!(chart.contains("no plottable points"));
        let chart = render_log_chart("t", &[], 30, 6);
        assert!(chart.contains("no plottable points"));
    }

    #[test]
    fn single_point_does_not_panic() {
        let s = series(vec![(5.0, 42.0)]);
        let chart = render_log_chart("t", &[s], 30, 6);
        assert!(chart.contains('o'));
    }

    #[test]
    fn respects_minimum_dimensions() {
        let s = series(vec![(1.0, 1.0), (2.0, 10.0)]);
        let chart = render_log_chart("t", &[s], 1, 1);
        // Clamped to 16×4; must not panic and must contain the symbol.
        assert!(chart.contains('o'));
    }
}
