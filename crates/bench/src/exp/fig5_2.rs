//! **Figure 5.2** — seed and final cost of k-means|| as a function of the
//! number of initialization rounds `r` on GaussMixture, for
//! `ℓ/k ∈ {0.1, 0.5, 1, 2, 10}` and `R ∈ {1, 10, 100}`, with the
//! k-means++ baseline.
//!
//! Reproduction notes: sampling is Bernoulli ("as in specifications of
//! k-means||", §5.3) and the candidate deficit is filled *uniformly*
//! ([`TopUp::Uniform`]) — that is what makes the `r·ℓ < k` region as bad
//! as `Random`, exactly as the paper's plots show. Each cell is a median
//! over `--runs` seeds (default 5; paper plots medians too).

use super::{emit, kmeanspp_seed_final, parallel_seed_final};
use crate::args::Args;
use crate::chart::{render_log_chart, Series};
use crate::format::{fmt_cost, Table};
use crate::run::executor_from_threads;
use kmeans_core::init::{SamplingMode, TopUp};
use kmeans_core::lloyd::LloydConfig;
use kmeans_data::synth::GaussMixture;

/// Runs the sweep; two tables (seed cost, final cost) per `R`.
pub fn run(args: &Args) -> Vec<Table> {
    let k = args.usize_or("k", 50);
    let n = args.usize_or("n", 10_000);
    let runs = args.usize_or("runs", 5);
    let seed = args.u64_or("seed", 1);
    let rs_variance = args.f64_list_or("rs", &[1.0, 10.0, 100.0]);
    let factors = args.f64_list_or("factors", &[0.1, 0.5, 1.0, 2.0, 10.0]);
    let rounds_list = args.usize_list_or("rounds", &[1, 2, 3, 5, 8, 10, 15]);
    let exec = executor_from_threads(args.usize_or("threads", 0));
    let lloyd = LloydConfig::default();

    let mut tables = Vec::new();
    for &variance in &rs_variance {
        eprintln!("[fig5_2] GaussMixture R={variance}, k={k}");
        let synth = GaussMixture::new(k)
            .points(n)
            .center_variance(variance)
            .generate(seed)
            .expect("valid generator parameters");
        let points = synth.dataset.points();
        let (pp_seed, pp_final) = kmeanspp_seed_final(points, k, runs, seed + 500, &lloyd, &exec);

        let mut chart_series: Vec<Series> = factors
            .iter()
            .map(|f| Series {
                label: format!("l/k={f}"),
                points: Vec::new(),
            })
            .collect();
        let mut columns = vec!["r".to_string()];
        for f in &factors {
            columns.push(format!("l/k={f}"));
        }
        let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
        let mut seed_table = Table::new(
            format!("Figure 5.2 seed cost (measured): R={variance}, k={k}, median of {runs}"),
            &col_refs,
        );
        let mut final_table = Table::new(
            format!("Figure 5.2 final cost (measured): R={variance}, k={k}, median of {runs}"),
            &col_refs,
        );
        for &r in &rounds_list {
            let mut seed_row = vec![r.to_string()];
            let mut final_row = vec![r.to_string()];
            for (fi, &factor) in factors.iter().enumerate() {
                let (s, f) = parallel_seed_final(
                    points,
                    k,
                    factor,
                    r,
                    SamplingMode::Bernoulli,
                    TopUp::Uniform,
                    runs,
                    seed + 500,
                    &lloyd,
                    &exec,
                );
                seed_row.push(fmt_cost(s));
                final_row.push(fmt_cost(f));
                chart_series[fi].points.push((r as f64, f));
            }
            eprintln!("[fig5_2] R={variance} r={r} done");
            seed_table.add_row(seed_row);
            final_table.add_row(final_row);
        }
        let mut baseline = vec!["k-means++".to_string()];
        let mut baseline_final = vec!["k-means++".to_string()];
        for _ in &factors {
            baseline.push(fmt_cost(pp_seed));
            baseline_final.push(fmt_cost(pp_final));
        }
        seed_table.add_row(baseline);
        final_table.add_row(baseline_final);
        tables.push(seed_table);
        tables.push(final_table);
        println!(
            "{}",
            render_log_chart(
                &format!("final cost vs rounds (R={variance}, log y)"),
                &chart_series,
                64,
                12,
            )
        );
    }
    emit(&tables, "fig5_2");
    tables
}
