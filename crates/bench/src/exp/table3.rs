//! **Table 3** — clustering cost on KDDCup1999 (the cost projection of the
//! shared KDD grid; paper values are ÷10¹⁰ at `k ∈ {500, 1000}` on 4.8 M
//! points — pass `--full` for that scale).

use super::emit;
use crate::args::Args;
use crate::format::{fmt_cost, Table};
use crate::kdd::{paper, run_matrix, KddCell, KddMatrixConfig};

/// Builds the Table 3 projection from precomputed grid cells.
pub fn table_from_cells(cells: &[KddCell], config: &KddMatrixConfig) -> Vec<Table> {
    let mut columns = vec!["method".to_string()];
    for k in &config.ks {
        columns.push(format!("k={k} cost"));
    }
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut measured = Table::new(
        format!(
            "Table 3 (measured): KDD stand-in clustering cost, n={}, median of {} runs",
            config.n, config.runs
        ),
        &col_refs,
    );
    let methods: Vec<String> = config.methods().iter().map(|m| m.label()).collect();
    for method in &methods {
        let mut row = vec![method.clone()];
        for &k in &config.ks {
            let cell = cells
                .iter()
                .find(|c| c.k == k && &c.method == method)
                .expect("cell computed");
            row.push(fmt_cost(cell.agg.final_cost));
        }
        measured.add_row(row);
    }

    let mut reference = Table::new(
        "Table 3 (paper, ÷1e10, k=500 / k=1000, n=4.8M)",
        &["method", "k=500", "k=1000"],
    );
    for (label, a, b) in paper::COST {
        reference.add_row(vec![label.to_string(), fmt_cost(*a), fmt_cost(*b)]);
    }
    vec![measured, reference]
}

/// Runs the grid and emits the Table 3 projection.
pub fn run(args: &Args) -> Vec<Table> {
    let config = KddMatrixConfig::from_args(args);
    let cells = run_matrix(&config);
    let tables = table_from_cells(&cells, &config);
    emit(&tables, "table3");
    tables
}

/// Synthetic grid cells covering every (method, k) pair of a config
/// (shared by the projection tests of Tables 3–5).
#[cfg(test)]
pub(crate) fn fake_cells(config: &KddMatrixConfig) -> Vec<KddCell> {
    use crate::run::Aggregate;
    let mut cells = Vec::new();
    for &k in &config.ks {
        for (i, method) in config.methods().iter().enumerate() {
            cells.push(KddCell {
                method: method.label(),
                k,
                agg: Aggregate {
                    seed_cost: 1e12 * (i + 1) as f64,
                    final_cost: 1e11 * (i + 1) as f64,
                    lloyd_iterations: 20.0,
                    candidates: 100.0 * (i + 1) as f64,
                    total_secs: 1.5 * (i + 1) as f64,
                    init_secs: 0.5 * (i + 1) as f64,
                },
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_covers_every_method_and_k() {
        let config = KddMatrixConfig {
            n: 1000,
            ks: vec![25, 50],
            runs: 1,
            seed: 0,
            lloyd_iterations: 20,
            threads: 1,
        };
        let cells = fake_cells(&config);
        let tables = table_from_cells(&cells, &config);
        assert_eq!(tables.len(), 2, "measured + paper reference");
        let measured = &tables[0];
        assert_eq!(measured.len(), config.methods().len());
        let tsv = measured.to_tsv();
        assert!(tsv.contains("Random"));
        assert!(tsv.contains("Partition"));
        assert!(tsv.contains("k=25 cost\tk=50 cost"));
    }

    #[test]
    #[should_panic(expected = "cell computed")]
    fn missing_cell_is_detected() {
        let config = KddMatrixConfig {
            n: 1000,
            ks: vec![25],
            runs: 1,
            seed: 0,
            lloyd_iterations: 20,
            threads: 1,
        };
        let mut cells = fake_cells(&config);
        cells.pop();
        table_from_cells(&cells, &config);
    }
}
