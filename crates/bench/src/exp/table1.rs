//! **Table 1** — median seed/final cost on GaussMixture, `k = 50`,
//! `R ∈ {1, 10, 100}`, scaled down by 10⁴ (median of 11 runs).

use super::{emit, sequential_suite};
use crate::args::Args;
use crate::format::{fmt_scaled, Table};
use crate::run::{executor_from_threads, run_many};
use kmeans_core::lloyd::LloydConfig;
use kmeans_data::synth::GaussMixture;

/// Paper values (÷10⁴): `(method, [R=1 seed, R=1 final, R=10 …, R=100 …])`.
/// `None` = not reported (the paper omits Random's seed cost).
const PAPER: &[(&str, [Option<f64>; 6])] = &[
    (
        "Random",
        [None, Some(14.0), None, Some(201.0), None, Some(23_337.0)],
    ),
    (
        "k-means++",
        [
            Some(23.0),
            Some(14.0),
            Some(62.0),
            Some(31.0),
            Some(30.0),
            Some(15.0),
        ],
    ),
    (
        "k-means|| l=0.5k r=5",
        [
            Some(21.0),
            Some(14.0),
            Some(36.0),
            Some(28.0),
            Some(23.0),
            Some(15.0),
        ],
    ),
    (
        "k-means|| l=2k r=5",
        [
            Some(17.0),
            Some(14.0),
            Some(27.0),
            Some(25.0),
            Some(16.0),
            Some(15.0),
        ],
    ),
];

/// Runs the experiment and returns the measured table plus the paper's.
pub fn run(args: &Args) -> Vec<Table> {
    let k = args.usize_or("k", 50);
    let n = args.usize_or("n", 10_000);
    let runs = args.usize_or("runs", 11);
    let seed = args.u64_or("seed", 1);
    let rs = args.f64_list_or("rs", &[1.0, 10.0, 100.0]);
    let exec = executor_from_threads(args.usize_or("threads", 0));
    let lloyd = LloydConfig::default();

    let mut columns = vec!["method".to_string()];
    for r in &rs {
        columns.push(format!("R={r} seed/1e4"));
        columns.push(format!("R={r} final/1e4"));
    }
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut measured = Table::new(
        format!("Table 1 (measured): GaussMixture, k={k}, n={n}, median of {runs} runs"),
        &col_refs,
    );

    let methods = sequential_suite();
    let mut rows: Vec<Vec<String>> = methods.iter().map(|m| vec![m.label()]).collect();
    for &r in &rs {
        eprintln!("[table1] generating GaussMixture R={r}");
        let synth = GaussMixture::new(k)
            .points(n)
            .center_variance(r)
            .generate(seed)
            .expect("valid generator parameters");
        let points = synth.dataset.points();
        for (row, method) in rows.iter_mut().zip(&methods) {
            let agg = run_many(method, points, k, runs, seed + 100, &lloyd, &exec);
            eprintln!(
                "[table1] R={r} {:<22} seed={:.3e} final={:.3e}",
                method.label(),
                agg.seed_cost,
                agg.final_cost
            );
            row.push(fmt_scaled(agg.seed_cost, 4));
            row.push(fmt_scaled(agg.final_cost, 4));
        }
    }
    for row in rows {
        measured.add_row(row);
    }

    let mut paper = Table::new("Table 1 (paper, ÷1e4)", &col_refs);
    for (label, vals) in PAPER {
        let mut row = vec![label.to_string()];
        for v in vals {
            row.push(v.map_or("—".to_string(), |x| format!("{x}")));
        }
        paper.add_row(row);
    }

    let tables = vec![measured, paper];
    emit(&tables, "table1");
    tables
}
