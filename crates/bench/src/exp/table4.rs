//! **Table 4** — running time on KDDCup1999 (the time projection of the
//! shared KDD grid). The paper reports minutes on a 1968-node Hadoop
//! cluster; we report seconds on the local shard executor, plus the
//! seeding share. The claim under reproduction is the *ordering*:
//! k-means|| (moderate ℓ) ≪ Random-with-20-Lloyd-iterations < Partition.

use super::emit;
use crate::args::Args;
use crate::format::{fmt_secs, Table};
use crate::kdd::{paper, run_matrix, KddCell, KddMatrixConfig};

/// Builds the Table 4 projection from precomputed grid cells.
pub fn table_from_cells(cells: &[KddCell], config: &KddMatrixConfig) -> Vec<Table> {
    let mut columns = vec!["method".to_string()];
    for k in &config.ks {
        columns.push(format!("k={k} total"));
        columns.push(format!("k={k} init"));
    }
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut measured = Table::new(
        format!(
            "Table 4 (measured): end-to-end wall time (init+Lloyd<=20 iters), n={}, mean of {} runs",
            config.n, config.runs
        ),
        &col_refs,
    );
    let methods: Vec<String> = config.methods().iter().map(|m| m.label()).collect();
    for method in &methods {
        let mut row = vec![method.clone()];
        for &k in &config.ks {
            let cell = cells
                .iter()
                .find(|c| c.k == k && &c.method == method)
                .expect("cell computed");
            row.push(fmt_secs(cell.agg.total_secs));
            row.push(fmt_secs(cell.agg.init_secs));
        }
        measured.add_row(row);
    }

    let mut reference = Table::new(
        "Table 4 (paper, minutes on 1968-node Hadoop, k=500 / k=1000)",
        &["method", "k=500", "k=1000"],
    );
    for (label, a, b) in paper::TIME_MIN {
        reference.add_row(vec![
            label.to_string(),
            format!("{a:.1}m"),
            format!("{b:.1}m"),
        ]);
    }
    vec![measured, reference]
}

/// Runs the grid and emits the Table 4 projection.
pub fn run(args: &Args) -> Vec<Table> {
    let config = KddMatrixConfig::from_args(args);
    let cells = run_matrix(&config);
    let tables = table_from_cells(&cells, &config);
    emit(&tables, "table4");
    tables
}
