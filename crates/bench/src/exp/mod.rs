//! One driver module per paper artifact. Each exposes
//! `run(&Args) -> Vec<Table>`; the binaries are thin wrappers and
//! `run_all` chains everything (sharing the KDD grid across Tables 3–5).

pub mod fig5_1;
pub mod fig5_2;
pub mod fig5_3;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;

use crate::format::{experiments_dir, Table};
use crate::run::Method;

/// Prints tables and writes their TSV artifacts under
/// `target/experiments/<stem>[_i].tsv`.
pub fn emit(tables: &[Table], stem: &str) {
    for (i, table) in tables.iter().enumerate() {
        table.print();
        println!();
        let name = if tables.len() == 1 {
            stem.to_string()
        } else {
            format!("{stem}_{}", i + 1)
        };
        match table.write_tsv(experiments_dir(), &name) {
            Ok(path) => eprintln!("[artifact] {}", path.display()),
            Err(e) => eprintln!("warning: could not write artifact: {e}"),
        }
    }
}

/// The method suite of Tables 1, 2, and 6: Random, k-means++, and the two
/// k-means|| configurations the paper tabulates (`ℓ = k/2` and `ℓ = 2k`,
/// both `r = 5`).
pub fn sequential_suite() -> Vec<Method> {
    vec![
        Method::Random,
        Method::KMeansPlusPlus,
        Method::parallel_grid(0.5),
        Method::parallel_grid(2.0),
    ]
}

use kmeans_core::init::{InitMethod, KMeansParallelConfig, SamplingMode, TopUp};
use kmeans_core::lloyd::{lloyd, LloydConfig};
use kmeans_data::PointMatrix;
use kmeans_par::Executor;
use kmeans_util::stats::median;

/// Runs k-means|| (given ℓ/k factor, rounds, sampling mode, top-up policy)
/// followed by Lloyd, `runs` times; returns `(median seed cost, median
/// final cost)`. Shared by the three figure sweeps.
#[allow(clippy::too_many_arguments)]
pub(crate) fn parallel_seed_final(
    points: &PointMatrix,
    k: usize,
    factor: f64,
    rounds: usize,
    mode: SamplingMode,
    topup: TopUp,
    runs: usize,
    base_seed: u64,
    lloyd_config: &LloydConfig,
    exec: &Executor,
) -> (f64, f64) {
    let init = InitMethod::KMeansParallel(
        KMeansParallelConfig::default()
            .oversampling_factor(factor)
            .rounds(rounds)
            .sampling(mode)
            .topup(topup),
    );
    let mut seeds = Vec::with_capacity(runs);
    let mut finals = Vec::with_capacity(runs);
    for r in 0..runs {
        let result = init
            .run(points, k, base_seed + r as u64, exec)
            .expect("valid sweep configuration");
        let out =
            lloyd(points, &result.centers, lloyd_config, exec).expect("valid Lloyd configuration");
        seeds.push(result.stats.seed_cost);
        finals.push(out.cost);
    }
    (
        median(&seeds).expect("runs >= 1"),
        median(&finals).expect("runs >= 1"),
    )
}

/// Median seed/final cost of plain k-means++ (the baseline line drawn in
/// Figures 5.2 and 5.3).
pub(crate) fn kmeanspp_seed_final(
    points: &PointMatrix,
    k: usize,
    runs: usize,
    base_seed: u64,
    lloyd_config: &LloydConfig,
    exec: &Executor,
) -> (f64, f64) {
    let mut seeds = Vec::with_capacity(runs);
    let mut finals = Vec::with_capacity(runs);
    for r in 0..runs {
        let result = InitMethod::KMeansPlusPlus
            .run(points, k, base_seed + r as u64, exec)
            .expect("valid configuration");
        let out =
            lloyd(points, &result.centers, lloyd_config, exec).expect("valid Lloyd configuration");
        seeds.push(result.stats.seed_cost);
        finals.push(out.cost);
    }
    (
        median(&seeds).expect("runs >= 1"),
        median(&finals).expect("runs >= 1"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_paper_rows() {
        let labels: Vec<String> = sequential_suite().iter().map(|m| m.label()).collect();
        assert_eq!(
            labels,
            vec![
                "Random",
                "k-means++",
                "k-means|| l=0.5k r=5",
                "k-means|| l=2k r=5"
            ]
        );
    }
}
