//! **Table 2** — median seed/final cost on Spam, `k ∈ {20, 50, 100}`,
//! scaled down by 10⁵ (median of 11 runs).

use super::{emit, sequential_suite};
use crate::args::Args;
use crate::format::{fmt_scaled, Table};
use crate::run::{executor_from_threads, run_many};
use kmeans_core::lloyd::LloydConfig;
use kmeans_data::synth::SpamLike;

/// Paper values (÷10⁵): `(method, [k=20 seed, k=20 final, k=50 …, k=100 …])`.
const PAPER: &[(&str, [Option<f64>; 6])] = &[
    (
        "Random",
        [
            None,
            Some(1_528.0),
            None,
            Some(1_488.0),
            None,
            Some(1_384.0),
        ],
    ),
    (
        "k-means++",
        [
            Some(460.0),
            Some(233.0),
            Some(110.0),
            Some(68.0),
            Some(40.0),
            Some(24.0),
        ],
    ),
    (
        "k-means|| l=0.5k r=5",
        [
            Some(310.0),
            Some(241.0),
            Some(82.0),
            Some(65.0),
            Some(29.0),
            Some(23.0),
        ],
    ),
    (
        "k-means|| l=2k r=5",
        [
            Some(260.0),
            Some(234.0),
            Some(69.0),
            Some(66.0),
            Some(24.0),
            Some(24.0),
        ],
    ),
];

/// Runs the experiment and returns the measured table plus the paper's.
pub fn run(args: &Args) -> Vec<Table> {
    let runs = args.usize_or("runs", 11);
    let seed = args.u64_or("seed", 1);
    let ks = args.usize_list_or("ks", &[20, 50, 100]);
    let exec = executor_from_threads(args.usize_or("threads", 0));
    let lloyd = LloydConfig::default();

    eprintln!("[table2] generating SpamLike (canonical shape 4601×58)");
    let synth = SpamLike::new().generate(seed).expect("valid parameters");
    let points = synth.dataset.points();

    let mut columns = vec!["method".to_string()];
    for k in &ks {
        columns.push(format!("k={k} seed/1e5"));
        columns.push(format!("k={k} final/1e5"));
    }
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut measured = Table::new(
        format!("Table 2 (measured): Spam stand-in, median of {runs} runs"),
        &col_refs,
    );

    let methods = sequential_suite();
    let mut rows: Vec<Vec<String>> = methods.iter().map(|m| vec![m.label()]).collect();
    for &k in &ks {
        for (row, method) in rows.iter_mut().zip(&methods) {
            let agg = run_many(method, points, k, runs, seed + 100, &lloyd, &exec);
            eprintln!(
                "[table2] k={k} {:<22} seed={:.3e} final={:.3e}",
                method.label(),
                agg.seed_cost,
                agg.final_cost
            );
            row.push(fmt_scaled(agg.seed_cost, 5));
            row.push(fmt_scaled(agg.final_cost, 5));
        }
    }
    for row in rows {
        measured.add_row(row);
    }

    let mut paper = Table::new("Table 2 (paper, ÷1e5)", &col_refs);
    for (label, vals) in PAPER {
        let mut row = vec![label.to_string()];
        for v in vals {
            row.push(v.map_or("—".to_string(), |x| format!("{x}")));
        }
        paper.add_row(row);
    }

    let tables = vec![measured, paper];
    emit(&tables, "table2");
    tables
}
