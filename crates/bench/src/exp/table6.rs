//! **Table 6** — Lloyd iterations to convergence on Spam (average of 10
//! runs), `k ∈ {20, 50, 100}`.

use super::{emit, sequential_suite};
use crate::args::Args;
use crate::format::Table;
use crate::run::{executor_from_threads, run_many};
use kmeans_core::lloyd::LloydConfig;
use kmeans_data::synth::SpamLike;

/// Paper values: `(method, [k=20, k=50, k=100])`.
const PAPER: &[(&str, [f64; 3])] = &[
    ("Random", [176.4, 166.8, 60.4]),
    ("k-means++", [38.3, 42.2, 36.6]),
    ("k-means|| l=0.5k r=5", [36.9, 30.8, 30.2]),
    ("k-means|| l=2k r=5", [23.3, 28.1, 29.7]),
];

/// Runs the experiment and returns the measured table plus the paper's.
pub fn run(args: &Args) -> Vec<Table> {
    let runs = args.usize_or("runs", 10);
    let seed = args.u64_or("seed", 1);
    let ks = args.usize_list_or("ks", &[20, 50, 100]);
    let exec = executor_from_threads(args.usize_or("threads", 0));
    // "Till convergence": assignment stability, generous cap.
    let lloyd = LloydConfig {
        max_iterations: args.usize_or("lloyd-iters", 500),
        tol: 0.0,
    };

    eprintln!("[table6] generating SpamLike (canonical shape 4601×58)");
    let synth = SpamLike::new().generate(seed).expect("valid parameters");
    let points = synth.dataset.points();

    let mut columns = vec!["method".to_string()];
    for k in &ks {
        columns.push(format!("k={k}"));
    }
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut measured = Table::new(
        format!("Table 6 (measured): Lloyd iterations to convergence, mean of {runs} runs"),
        &col_refs,
    );

    let methods = sequential_suite();
    let mut rows: Vec<Vec<String>> = methods.iter().map(|m| vec![m.label()]).collect();
    for &k in &ks {
        for (row, method) in rows.iter_mut().zip(&methods) {
            let agg = run_many(method, points, k, runs, seed + 300, &lloyd, &exec);
            eprintln!(
                "[table6] k={k} {:<22} iterations={:.1}",
                method.label(),
                agg.lloyd_iterations
            );
            row.push(format!("{:.1}", agg.lloyd_iterations));
        }
    }
    for row in rows {
        measured.add_row(row);
    }

    let mut paper = Table::new("Table 6 (paper)", &col_refs);
    for (label, vals) in PAPER {
        let mut row = vec![label.to_string()];
        for v in vals {
            row.push(format!("{v}"));
        }
        paper.add_row(row);
    }

    let tables = vec![measured, paper];
    emit(&tables, "table6");
    tables
}
