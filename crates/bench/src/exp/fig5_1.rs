//! **Figure 5.1** — the effect of `ℓ` and the number of rounds `r` on the
//! final cost, on a 10 % sample of KDDCup1999, `k ∈ {17, 33, 65, 129}`,
//! `ℓ/k ∈ {1, 2, 4}`.
//!
//! Reproduction notes: this is the experiment where the paper switches to
//! sampling "exactly ℓ points from the joint distribution in every round"
//! ([`SamplingMode::ExactL`]) so that the intermediate set has exactly
//! `ℓ·r` points. Each cell is the median over `--runs` seeds (paper: 11).
//! The expected shape: final cost decreases monotonically in `r`;
//! oversampling (larger ℓ/k) helps at small `r` and the benefit fades by
//! `r ≈ 8`.
//!
//! `--mode bernoulli` switches to Bernoulli sampling (ablation A1).

use super::{emit, parallel_seed_final};
use crate::args::Args;
use crate::chart::{render_log_chart, Series};
use crate::format::{fmt_cost, Table};
use crate::run::executor_from_threads;
use kmeans_core::init::{SamplingMode, TopUp};
use kmeans_core::lloyd::LloydConfig;
use kmeans_data::synth::KddLike;

/// Runs the sweep; one table (rows `r`, columns `ℓ/k`) per `k`.
pub fn run(args: &Args) -> Vec<Table> {
    let full = args.flag("full");
    // "a 10% sample of KDDCup1999": 480k points at paper scale; the
    // laptop default matches 10% of the scaled Tables 3-5 workload (50k).
    let n = args.usize_or("n", if full { 480_000 } else { 5_000 });
    let default_ks: &[usize] = &[17, 33, 65, 129];
    let _ = full;
    let ks = args.usize_list_or("ks", default_ks);
    let factors = args.f64_list_or("factors", &[1.0, 2.0, 4.0]);
    let rounds_list = args.usize_list_or("rounds", &[1, 2, 4, 8, 16]);
    let runs = args.usize_or("runs", 3);
    let seed = args.u64_or("seed", 1);
    let exec = executor_from_threads(args.usize_or("threads", 0));
    let lloyd = LloydConfig {
        max_iterations: args.usize_or("lloyd-iters", 15),
        tol: 0.0,
    };
    let mode = match args.str_or("mode", "exact").as_str() {
        "exact" => SamplingMode::ExactL,
        "bernoulli" => SamplingMode::Bernoulli,
        other => panic!("--mode expects 'exact' or 'bernoulli', got '{other}'"),
    };

    eprintln!("[fig5_1] generating KddLike sample n={n}");
    let synth = KddLike::new(n).generate(seed).expect("valid parameters");
    let points = synth.dataset.points();

    let mut tables = Vec::new();
    for &k in &ks {
        let mut chart_series: Vec<Series> = factors
            .iter()
            .map(|f| Series {
                label: format!("l/k={f}"),
                points: Vec::new(),
            })
            .collect();
        let mut columns = vec!["r".to_string()];
        for f in &factors {
            columns.push(format!("l/k={f}"));
        }
        let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
        let mut table = Table::new(
            format!(
                "Figure 5.1 (measured): KDD stand-in 10% sample, k={k}, {mode:?} sampling, \
                 median final cost of {runs} runs"
            ),
            &col_refs,
        );
        for &r in &rounds_list {
            let mut row = vec![r.to_string()];
            for (fi, &factor) in factors.iter().enumerate() {
                let (_, final_cost) = parallel_seed_final(
                    points,
                    k,
                    factor,
                    r,
                    mode,
                    TopUp::Uniform,
                    runs,
                    seed + 700,
                    &lloyd,
                    &exec,
                );
                row.push(fmt_cost(final_cost));
                chart_series[fi].points.push((r as f64, final_cost));
            }
            eprintln!("[fig5_1] k={k} r={r} done");
            table.add_row(row);
        }
        tables.push(table);
        println!(
            "{}",
            render_log_chart(
                &format!("Figure 5.1, k={k}: final cost vs rounds (log y)"),
                &chart_series,
                64,
                12,
            )
        );
    }
    emit(&tables, "fig5_1");
    tables
}
