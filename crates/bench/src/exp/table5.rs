//! **Table 5** — number of intermediate centers before reclustering (the
//! candidate-count projection of the shared KDD grid). The paper's
//! headline: Partition's coreset is three orders of magnitude larger than
//! k-means||'s.

use super::emit;
use crate::args::Args;
use crate::format::{fmt_cost, Table};
use crate::kdd::{paper, run_matrix, KddCell, KddMatrixConfig};

/// Builds the Table 5 projection from precomputed grid cells.
pub fn table_from_cells(cells: &[KddCell], config: &KddMatrixConfig) -> Vec<Table> {
    let mut columns = vec!["method".to_string()];
    for k in &config.ks {
        columns.push(format!("k={k} centers"));
    }
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut measured = Table::new(
        format!(
            "Table 5 (measured): intermediate centers before reclustering, n={}",
            config.n
        ),
        &col_refs,
    );
    // Paper's Table 5 lists Partition and the k-means|| grid (not Random).
    let methods: Vec<String> = config
        .methods()
        .iter()
        .map(|m| m.label())
        .filter(|l| l != "Random")
        .collect();
    for method in &methods {
        let mut row = vec![method.clone()];
        for &k in &config.ks {
            let cell = cells
                .iter()
                .find(|c| c.k == k && &c.method == method)
                .expect("cell computed");
            row.push(format!("{:.0}", cell.agg.candidates));
        }
        measured.add_row(row);
    }

    let mut reference = Table::new(
        "Table 5 (paper, k=500 / k=1000, n=4.8M)",
        &["method", "k=500", "k=1000"],
    );
    for (label, a, b) in paper::CENTERS {
        reference.add_row(vec![label.to_string(), fmt_cost(*a), fmt_cost(*b)]);
    }
    vec![measured, reference]
}

/// Runs the grid and emits the Table 5 projection.
pub fn run(args: &Args) -> Vec<Table> {
    let config = KddMatrixConfig::from_args(args);
    let cells = run_matrix(&config);
    let tables = table_from_cells(&cells, &config);
    emit(&tables, "table5");
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_excluded_from_table_5() {
        // The paper's Table 5 lists intermediate-set sizes only for the
        // methods that have one (Partition + the k-means|| grid).
        let config = KddMatrixConfig {
            n: 1000,
            ks: vec![25],
            runs: 1,
            seed: 0,
            lloyd_iterations: 20,
            threads: 1,
        };
        let cells = crate::exp::table3::fake_cells(&config);
        let tables = table_from_cells(&cells, &config);
        let tsv = tables[0].to_tsv();
        assert!(!tsv.contains("Random"), "Random leaked into Table 5");
        assert!(tsv.contains("Partition"));
        assert_eq!(tables[0].len(), config.methods().len() - 1);
    }
}
