//! The shared KDDCup1999 experiment matrix behind Tables 3, 4, and 5.
//!
//! The paper runs one parallel experiment grid on KDDCup1999 —
//! `k ∈ {500, 1000}` with methods `Random`, `Partition`, and k-means||
//! with `ℓ/k ∈ {0.1, 0.5, 1, 2, 10}` (`r = 5`, except `r = 15` for
//! `ℓ = 0.1k`) — and reports three projections of it: the final clustering
//! cost (Table 3), the running time (Table 4), and the intermediate-center
//! count before reclustering (Table 5). This module runs the grid once and
//! lets each binary print its projection.
//!
//! Scaling: the defaults (`n = 50 000`, `k ∈ {25, 50}`, 3 runs) complete
//! in minutes on a laptop; `--full` restores the paper's
//! `n = 4.8 M`, `k ∈ {500, 1000}`. Lloyd is capped at 20 iterations,
//! matching the paper's parallel `Random` setup ("we bounded the number of
//! iterations to 20").

use crate::args::Args;
use crate::run::{executor_from_threads, run_many, Aggregate, Method};
use kmeans_core::lloyd::LloydConfig;
use kmeans_data::synth::KddLike;
use kmeans_par::Executor;

/// Configuration of the KDD matrix.
#[derive(Clone, Debug)]
pub struct KddMatrixConfig {
    /// Dataset size.
    pub n: usize,
    /// Cluster counts.
    pub ks: Vec<usize>,
    /// Runs per cell (the paper uses 11 for cost tables; the default here
    /// is 3 to keep the laptop-scale grid quick).
    pub runs: usize,
    /// Base seed.
    pub seed: u64,
    /// Lloyd cap (paper: 20 for the parallel experiments).
    pub lloyd_iterations: usize,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

impl KddMatrixConfig {
    /// Builds the configuration from command-line arguments.
    pub fn from_args(args: &Args) -> Self {
        let full = args.flag("full");
        let default_n = if full { 4_800_000 } else { 50_000 };
        // Scaled-down k must still exceed the generator's 23 traffic
        // classes so D² methods can cover every cluster (cf. the paper's
        // k ≥ 500 against ~23 real KDD classes).
        let default_ks: &[usize] = if full { &[500, 1000] } else { &[25, 50] };
        KddMatrixConfig {
            n: args.usize_or("n", default_n),
            ks: args.usize_list_or("ks", default_ks),
            runs: args.usize_or("runs", 3),
            seed: args.u64_or("seed", 1),
            lloyd_iterations: args.usize_or("lloyd-iters", 20),
            threads: args.usize_or("threads", 0),
        }
    }

    /// The method grid of Tables 3–5, in paper row order.
    pub fn methods(&self) -> Vec<Method> {
        let mut methods = vec![Method::Random, Method::Partition];
        for factor in [0.1, 0.5, 1.0, 2.0, 10.0] {
            methods.push(Method::parallel_grid(factor));
        }
        methods
    }
}

/// One grid cell result.
#[derive(Clone, Debug)]
pub struct KddCell {
    /// Method label (paper row).
    pub method: String,
    /// Cluster count (paper column).
    pub k: usize,
    /// Aggregated outcome.
    pub agg: Aggregate,
}

/// Runs the full grid, printing progress to stderr.
pub fn run_matrix(config: &KddMatrixConfig) -> Vec<KddCell> {
    let exec: Executor = executor_from_threads(config.threads);
    eprintln!(
        "[kdd] generating KddLike n={} (deterministic seed {})",
        config.n, config.seed
    );
    let synth = KddLike::new(config.n)
        .generate(config.seed)
        .expect("valid generator parameters");
    let points = synth.dataset.points();
    let lloyd_config = LloydConfig {
        max_iterations: config.lloyd_iterations,
        tol: 0.0,
    };
    let mut cells = Vec::new();
    for &k in &config.ks {
        for method in config.methods() {
            let sw = kmeans_util::timing::Stopwatch::start();
            let agg = run_many(
                &method,
                points,
                k,
                config.runs,
                config.seed + 1000,
                &lloyd_config,
                &exec,
            );
            eprintln!(
                "[kdd] k={k:5} {:<22} cost={:.3e} candidates={:>9} ({:.1}s)",
                method.label(),
                agg.final_cost,
                agg.candidates,
                sw.elapsed_secs()
            );
            cells.push(KddCell {
                method: method.label(),
                k,
                agg,
            });
        }
    }
    cells
}

/// Paper reference values for Tables 3–5 (`k = 500` / `k = 1000` columns),
/// used to print the "paper:" comparison row blocks.
pub mod paper {
    /// Table 3 — clustering cost ÷ 10¹⁰.
    pub const COST: &[(&str, f64, f64)] = &[
        ("Random", 6.8e7, 6.4e7),
        ("Partition", 7.3, 1.9),
        ("k-means|| l=0.1k r=15", 5.1, 1.5),
        ("k-means|| l=0.5k r=5", 19.0, 5.2),
        ("k-means|| l=1k r=5", 7.7, 2.0),
        ("k-means|| l=2k r=5", 5.2, 1.5),
        ("k-means|| l=10k r=5", 5.8, 1.6),
    ];
    /// Table 4 — time in minutes.
    pub const TIME_MIN: &[(&str, f64, f64)] = &[
        ("Random", 300.0, 489.4),
        ("Partition", 420.2, 1021.7),
        ("k-means|| l=0.1k r=15", 230.2, 222.6),
        ("k-means|| l=0.5k r=5", 69.0, 46.2),
        ("k-means|| l=1k r=5", 75.6, 89.1),
        ("k-means|| l=2k r=5", 69.8, 86.7),
        ("k-means|| l=10k r=5", 75.7, 101.0),
    ];
    /// Table 5 — intermediate centers before reclustering.
    pub const CENTERS: &[(&str, f64, f64)] = &[
        ("Partition", 9.5e5, 1.47e6),
        ("k-means|| l=0.1k r=15", 602.0, 1240.0),
        ("k-means|| l=0.5k r=5", 591.0, 1124.0),
        ("k-means|| l=1k r=5", 1074.0, 2234.0),
        ("k-means|| l=2k r=5", 2321.0, 3604.0),
        ("k-means|| l=10k r=5", 9116.0, 7588.0),
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_and_full_mode() {
        let args = Args::from_tokens(Vec::<String>::new());
        let c = KddMatrixConfig::from_args(&args);
        assert_eq!(c.n, 50_000);
        assert_eq!(c.ks, vec![25, 50]);
        assert_eq!(c.lloyd_iterations, 20);
        let full = Args::from_tokens(vec!["--full".to_string()]);
        let c = KddMatrixConfig::from_args(&full);
        assert_eq!(c.n, 4_800_000);
        assert_eq!(c.ks, vec![500, 1000]);
        let custom = Args::from_tokens(
            "--n 5000 --ks 10 --runs 2 --seed 9"
                .split_whitespace()
                .map(String::from)
                .collect::<Vec<_>>(),
        );
        let c = KddMatrixConfig::from_args(&custom);
        assert_eq!(c.n, 5_000);
        assert_eq!(c.ks, vec![10]);
        assert_eq!(c.runs, 2);
        assert_eq!(c.seed, 9);
    }

    #[test]
    fn method_grid_matches_paper_rows() {
        let args = Args::from_tokens(Vec::<String>::new());
        let c = KddMatrixConfig::from_args(&args);
        let labels: Vec<String> = c.methods().iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 7);
        assert_eq!(labels[0], "Random");
        assert_eq!(labels[1], "Partition");
        assert!(labels[2].contains("l=0.1k r=15"));
        assert!(labels[6].contains("l=10k r=5"));
    }

    #[test]
    fn tiny_matrix_runs_end_to_end() {
        // A minuscule grid to keep the test fast; exercises every method.
        // k must exceed the generator's 23 traffic classes: only then can
        // D² seeding cover every occupied cluster, which is what produces
        // the paper's orders-of-magnitude gap over Random.
        let config = KddMatrixConfig {
            n: 4_000,
            ks: vec![25],
            runs: 1,
            seed: 3,
            lloyd_iterations: 3,
            threads: 1,
        };
        let cells = run_matrix(&config);
        assert_eq!(cells.len(), 7);
        // Random must be dramatically worse than the best D² method on
        // KDD-shaped data (the Table 3 headline).
        let cost = |label: &str| {
            cells
                .iter()
                .find(|c| c.method.starts_with(label))
                .map(|c| c.agg.final_cost)
                .expect("method present")
        };
        let random = cost("Random");
        let kmpar = cost("k-means|| l=2k");
        assert!(
            random > 10.0 * kmpar,
            "Random {random:.3e} not ≫ k-means|| {kmpar:.3e}"
        );
    }
}
