//! Shared writer for the workspace's machine-readable bench artifacts.
//!
//! Multiple bench binaries contribute to one JSON file (the kernel
//! trajectory `BENCH_kernels.json` is fed by both `benches/distance.rs`
//! and `benches/assign_kernel.rs`), so the writer **merges by record id**:
//! it keeps existing records whose id is not being re-reported, replaces
//! those that are, and appends the rest — successive `cargo bench` runs
//! converge on one complete snapshot instead of clobbering each other.
//!
//! The format is deliberately rigid (one record per line, fixed fields)
//! so it can be parsed back without a JSON dependency.

use std::io::Write;
use std::path::Path;

/// One kernel-bench record: a benchmark identity, its configuration axes,
/// the median wall time, and the kernel work counters.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelRecord {
    /// Unique record id (`group/bench/param`); the merge key.
    pub id: String,
    /// Kernel / code path being measured (e.g. `"assign_kernel"`,
    /// `"scalar_nearest"`, `"sq_dist"`).
    pub kernel: String,
    /// Points in the workload (1 for pair-level micro-benches).
    pub n: usize,
    /// Dimensionality.
    pub d: usize,
    /// Centers (0 where not applicable).
    pub k: usize,
    /// Center-tile size (0 for untiled scalar paths).
    pub tile: usize,
    /// Median wall time in nanoseconds.
    pub wall_ns: u128,
    /// Point–center distance evaluations actually performed per run.
    pub distance_computations: u64,
    /// Candidates skipped by the norm lower bound per run.
    pub pruned: u64,
}

impl KernelRecord {
    fn to_line(&self) -> String {
        format!(
            "  {{\"id\": \"{}\", \"kernel\": \"{}\", \"n\": {}, \"d\": {}, \"k\": {}, \
             \"tile\": {}, \"wall_ns\": {}, \"distance_computations\": {}, \"pruned\": {}}}",
            escape_free(&self.id),
            escape_free(&self.kernel),
            self.n,
            self.d,
            self.k,
            self.tile,
            self.wall_ns,
            self.distance_computations,
            self.pruned,
        )
    }
}

fn escape_free(s: &str) -> &str {
    debug_assert!(
        !s.contains('"') && !s.contains('\\'),
        "bench ids stay in the JSON-safe subset"
    );
    s
}

/// Extracts the `"id"` value from one record line written by this module.
fn line_id(line: &str) -> Option<&str> {
    let rest = line.split("\"id\": \"").nth(1)?;
    rest.split('"').next()
}

/// Writes `records` into the JSON array at `path`, replacing any existing
/// records with matching ids and keeping the rest (see module docs).
///
/// # Panics
///
/// Panics on I/O errors — bench harnesses have no error channel and a
/// silently missing artifact is worse than an aborted bench run.
pub fn write_merged(path: &Path, records: &[KernelRecord]) {
    let mut lines: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(path) {
        for line in existing.lines() {
            let Some(id) = line_id(line) else { continue };
            if records.iter().all(|r| r.id != id) {
                lines.push(line.trim_end_matches(',').to_string());
            }
        }
    }
    lines.extend(records.iter().map(|r| r.to_line()));
    let mut out = String::from("[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]\n");
    let mut file = std::fs::File::create(path).expect("create bench JSON artifact");
    file.write_all(out.as_bytes())
        .expect("write bench JSON artifact");
    println!(
        "wrote {} records ({} new/updated) -> {}",
        lines.len(),
        records.len(),
        path.display()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str, wall: u128) -> KernelRecord {
        KernelRecord {
            id: id.into(),
            kernel: "assign_kernel".into(),
            n: 100,
            d: 16,
            k: 64,
            tile: 256,
            wall_ns: wall,
            distance_computations: 123,
            pruned: 45,
        }
    }

    #[test]
    fn merge_replaces_matching_ids_and_keeps_others() {
        let dir = std::env::temp_dir().join(format!("bench_json_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("merge.json");
        write_merged(&path, &[record("a/x", 10), record("a/y", 20)]);
        write_merged(&path, &[record("a/y", 99), record("b/z", 30)]);
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"id\": \"a/x\""), "{body}");
        assert!(body.contains("\"wall_ns\": 99"), "replaced: {body}");
        assert!(!body.contains("\"wall_ns\": 20"), "stale kept: {body}");
        assert!(body.contains("\"id\": \"b/z\""), "{body}");
        assert_eq!(body.matches("\"id\"").count(), 3);
        // The artifact stays parseable line by line.
        assert!(body.starts_with("[\n") && body.ends_with("]\n"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
