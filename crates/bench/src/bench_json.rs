//! Shared writer for the workspace's machine-readable bench artifacts.
//!
//! Multiple bench binaries contribute to one JSON file (the kernel
//! trajectory `BENCH_kernels.json` is fed by both `benches/distance.rs`
//! and `benches/assign_kernel.rs`), so the writer **merges by record id**:
//! it keeps existing records whose id is not being re-reported, replaces
//! those that are, and appends the rest — successive `cargo bench` runs
//! converge on one complete snapshot instead of clobbering each other.
//!
//! The format is deliberately rigid (one record per line, fixed fields)
//! so it can be parsed back without a JSON dependency.

use std::io::Write;
use std::path::Path;

/// One kernel-bench record: a benchmark identity, its configuration axes,
/// the median wall time, and the kernel work counters.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelRecord {
    /// Unique record id (`group/bench/param`); the merge key.
    pub id: String,
    /// Kernel / code path being measured (e.g. `"assign_kernel"`,
    /// `"scalar_nearest"`, `"sq_dist"`).
    pub kernel: String,
    /// Points in the workload (1 for pair-level micro-benches).
    pub n: usize,
    /// Dimensionality.
    pub d: usize,
    /// Centers (0 where not applicable).
    pub k: usize,
    /// Center-tile size (0 for untiled scalar paths).
    pub tile: usize,
    /// Median wall time in nanoseconds.
    pub wall_ns: u128,
    /// Point–center distance evaluations actually performed per run.
    pub distance_computations: u64,
    /// Candidates skipped by the norm lower bound per run.
    pub pruned: u64,
}

impl KernelRecord {
    fn to_line(&self) -> String {
        format!(
            "  {{\"id\": \"{}\", \"kernel\": \"{}\", \"n\": {}, \"d\": {}, \"k\": {}, \
             \"tile\": {}, \"wall_ns\": {}, \"distance_computations\": {}, \"pruned\": {}}}",
            escape_free(&self.id),
            escape_free(&self.kernel),
            self.n,
            self.d,
            self.k,
            self.tile,
            self.wall_ns,
            self.distance_computations,
            self.pruned,
        )
    }
}

fn escape_free(s: &str) -> &str {
    debug_assert!(
        !s.contains('"') && !s.contains('\\'),
        "bench ids stay in the JSON-safe subset"
    );
    s
}

/// One driver-bench record: a benchmark identity, the algorithm and the
/// execution backend it ran on, the configuration axes, the median wall
/// time, and the round/wire accounting (0 where the backend has no
/// wire). Written to `BENCH_driver.json` by `benches/driver.rs`.
#[derive(Clone, Debug, PartialEq)]
pub struct DriverRecord {
    /// Unique record id (`group/method/backend`); the merge key.
    pub id: String,
    /// Algorithm pipeline being driven (e.g. `"kmeans-par+lloyd"`).
    pub method: String,
    /// Execution backend (`"in-memory"`, `"chunked"`,
    /// `"distributed-w2"`, …).
    pub backend: String,
    /// Points in the workload.
    pub n: usize,
    /// Dimensionality.
    pub d: usize,
    /// Centers.
    pub k: usize,
    /// Median wall time in nanoseconds.
    pub wall_ns: u128,
    /// Frame bytes moved, coordinator↔workers (0 off the wire).
    pub bytes_on_wire: u64,
    /// Full data passes driven (0 where the backend does not count them).
    pub data_passes: u64,
    /// Blocking coordinator↔worker wire round trips (session control —
    /// Hello/Plan/Shutdown — excluded; a fused compound round counts
    /// once; 0 off the wire).
    pub round_trips: u64,
}

impl DriverRecord {
    fn to_line(&self) -> String {
        format!(
            "  {{\"id\": \"{}\", \"method\": \"{}\", \"backend\": \"{}\", \"n\": {}, \"d\": {}, \
             \"k\": {}, \"wall_ns\": {}, \"bytes_on_wire\": {}, \"data_passes\": {}, \
             \"round_trips\": {}}}",
            escape_free(&self.id),
            escape_free(&self.method),
            escape_free(&self.backend),
            self.n,
            self.d,
            self.k,
            self.wall_ns,
            self.bytes_on_wire,
            self.data_passes,
            self.round_trips,
        )
    }
}

/// One serving-bench record: a load-generator configuration (request
/// batch size × concurrent clients), its throughput, and the tail
/// latencies. Written to `BENCH_serve.json` by `benches/serve.rs`.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeRecord {
    /// Unique record id (`serve/<transport>/b<batch>_c<clients>`); the
    /// merge key.
    pub id: String,
    /// Transport the load ran over (`"tcp"`).
    pub transport: String,
    /// Points per predict request.
    pub batch: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Total requests answered in the measured window.
    pub requests: u64,
    /// Dimensionality of the served model.
    pub d: usize,
    /// Centers in the served model.
    pub k: usize,
    /// Median request latency in nanoseconds.
    pub p50_ns: u128,
    /// 99th-percentile request latency in nanoseconds.
    pub p99_ns: u128,
    /// Requests per second over the measured window.
    pub qps: u64,
    /// Points assigned per second over the measured window.
    pub points_per_sec: u64,
    /// Requests shed by admission control during the window (0 for an
    /// un-overloaded configuration). Latency quantiles cover *accepted*
    /// requests only — shedding is what keeps them bounded.
    pub shed_requests: u64,
    /// Shed fraction of the offered load (`shed / (shed + answered)`).
    pub shed_rate: f64,
}

impl ServeRecord {
    fn to_line(&self) -> String {
        format!(
            "  {{\"id\": \"{}\", \"transport\": \"{}\", \"batch\": {}, \"clients\": {}, \
             \"requests\": {}, \"d\": {}, \"k\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"qps\": {}, \"points_per_sec\": {}, \"shed_requests\": {}, \"shed_rate\": {:.4}}}",
            escape_free(&self.id),
            escape_free(&self.transport),
            self.batch,
            self.clients,
            self.requests,
            self.d,
            self.k,
            self.p50_ns,
            self.p99_ns,
            self.qps,
            self.points_per_sec,
            self.shed_requests,
            self.shed_rate,
        )
    }
}

/// Extracts the `"id"` value from one record line written by this module.
fn line_id(line: &str) -> Option<&str> {
    let rest = line.split("\"id\": \"").nth(1)?;
    rest.split('"').next()
}

/// The shared merge-by-id writer: keeps existing record lines whose id is
/// not being re-reported, replaces the rest with `new` (id, line) pairs.
fn merge_lines(path: &Path, new: &[(String, String)]) {
    let mut lines: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(path) {
        for line in existing.lines() {
            let Some(id) = line_id(line) else { continue };
            if new.iter().all(|(new_id, _)| new_id != id) {
                lines.push(line.trim_end_matches(',').to_string());
            }
        }
    }
    lines.extend(new.iter().map(|(_, line)| line.clone()));
    let mut out = String::from("[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]\n");
    let mut file = std::fs::File::create(path).expect("create bench JSON artifact");
    file.write_all(out.as_bytes())
        .expect("write bench JSON artifact");
    println!(
        "wrote {} records ({} new/updated) -> {}",
        lines.len(),
        new.len(),
        path.display()
    );
}

/// Writes `records` into the JSON array at `path`, replacing any existing
/// records with matching ids and keeping the rest (see module docs).
///
/// # Panics
///
/// Panics on I/O errors — bench harnesses have no error channel and a
/// silently missing artifact is worse than an aborted bench run.
pub fn write_merged(path: &Path, records: &[KernelRecord]) {
    let new: Vec<(String, String)> = records
        .iter()
        .map(|r| (r.id.clone(), r.to_line()))
        .collect();
    merge_lines(path, &new);
}

/// [`write_merged`] for [`DriverRecord`]s (same merge-by-id semantics,
/// different record shape — the driver trajectory lives in its own
/// artifact, `BENCH_driver.json`).
pub fn write_merged_driver(path: &Path, records: &[DriverRecord]) {
    let new: Vec<(String, String)> = records
        .iter()
        .map(|r| (r.id.clone(), r.to_line()))
        .collect();
    merge_lines(path, &new);
}

/// [`write_merged`] for [`ServeRecord`]s (same merge-by-id semantics;
/// the serving trajectory lives in `BENCH_serve.json`).
pub fn write_merged_serve(path: &Path, records: &[ServeRecord]) {
    let new: Vec<(String, String)> = records
        .iter()
        .map(|r| (r.id.clone(), r.to_line()))
        .collect();
    merge_lines(path, &new);
}

/// Reads back the `"wall_ns"` value of the record with `id` from a bench
/// artifact written by this module, if present — the hook the driver
/// bench's quick mode uses to compare against the committed pre-refactor
/// trajectory.
pub fn read_wall_ns(path: &Path, fragment: &str) -> Option<u128> {
    let body = std::fs::read_to_string(path).ok()?;
    for line in body.lines() {
        if !line.contains(fragment) {
            continue;
        }
        let rest = line.split("\"wall_ns\": ").nth(1)?;
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        return digits.parse().ok();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str, wall: u128) -> KernelRecord {
        KernelRecord {
            id: id.into(),
            kernel: "assign_kernel".into(),
            n: 100,
            d: 16,
            k: 64,
            tile: 256,
            wall_ns: wall,
            distance_computations: 123,
            pruned: 45,
        }
    }

    #[test]
    fn merge_replaces_matching_ids_and_keeps_others() {
        let dir = std::env::temp_dir().join(format!("bench_json_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("merge.json");
        write_merged(&path, &[record("a/x", 10), record("a/y", 20)]);
        write_merged(&path, &[record("a/y", 99), record("b/z", 30)]);
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"id\": \"a/x\""), "{body}");
        assert!(body.contains("\"wall_ns\": 99"), "replaced: {body}");
        assert!(!body.contains("\"wall_ns\": 20"), "stale kept: {body}");
        assert!(body.contains("\"id\": \"b/z\""), "{body}");
        assert_eq!(body.matches("\"id\"").count(), 3);
        // The artifact stays parseable line by line.
        assert!(body.starts_with("[\n") && body.ends_with("]\n"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
