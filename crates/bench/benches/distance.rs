//! Micro-bench: the squared-distance kernel and nearest-center scan at the
//! paper's dimensionalities (GaussMixture d=15, KDD d=42, Spam d=58).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kmeans_core::distance::{nearest, sq_dist, sq_dist_bounded};
use kmeans_data::PointMatrix;
use kmeans_util::Rng;
use std::time::Duration;

fn random_vec(dim: usize, rng: &mut Rng) -> Vec<f64> {
    (0..dim).map(|_| rng.normal()).collect()
}

fn bench_sq_dist(c: &mut Criterion) {
    let mut group = c.benchmark_group("sq_dist");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let mut rng = Rng::new(1);
    for dim in [15usize, 42, 58] {
        let a = random_vec(dim, &mut rng);
        let b = random_vec(dim, &mut rng);
        group.bench_with_input(BenchmarkId::new("plain", dim), &dim, |bench, _| {
            bench.iter(|| sq_dist(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("bounded_inf", dim), &dim, |bench, _| {
            bench.iter(|| sq_dist_bounded(black_box(&a), black_box(&b), f64::INFINITY))
        });
    }
    group.finish();
}

fn bench_nearest(c: &mut Criterion) {
    let mut group = c.benchmark_group("nearest_center");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let mut rng = Rng::new(2);
    for k in [10usize, 100, 500] {
        let dim = 42;
        let mut centers = PointMatrix::new(dim);
        for _ in 0..k {
            centers.push(&random_vec(dim, &mut rng)).unwrap();
        }
        let query = random_vec(dim, &mut rng);
        group.bench_with_input(BenchmarkId::new("pruned_scan", k), &k, |bench, _| {
            bench.iter(|| nearest(black_box(&query), black_box(&centers)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sq_dist, bench_nearest);
criterion_main!(benches);
