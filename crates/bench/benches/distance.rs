//! Micro-bench: the squared-distance kernel and nearest-center scan at the
//! paper's dimensionalities (GaussMixture d=15, KDD d=42, Spam d=58).
//!
//! Contributes the pair-level baseline records to `BENCH_kernels.json`
//! (merged with the batch-kernel records from `benches/assign_kernel.rs`),
//! so the perf trajectory of the distance layer is machine-readable
//! across PRs.

use criterion::{black_box, BenchmarkId, Criterion};
use kmeans_bench::bench_json::{write_merged, KernelRecord};
use kmeans_core::distance::{nearest, sq_dist, sq_dist_bounded};
use kmeans_data::PointMatrix;
use kmeans_util::Rng;
use std::path::Path;
use std::time::Duration;

fn random_vec(dim: usize, rng: &mut Rng) -> Vec<f64> {
    (0..dim).map(|_| rng.normal()).collect()
}

fn bench_sq_dist(c: &mut Criterion) {
    let mut group = c.benchmark_group("sq_dist");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let mut rng = Rng::new(1);
    for dim in [15usize, 42, 58] {
        let a = random_vec(dim, &mut rng);
        let b = random_vec(dim, &mut rng);
        group.bench_with_input(BenchmarkId::new("plain", dim), &dim, |bench, _| {
            bench.iter(|| sq_dist(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("bounded_inf", dim), &dim, |bench, _| {
            bench.iter(|| sq_dist_bounded(black_box(&a), black_box(&b), f64::INFINITY))
        });
    }
    group.finish();
}

fn bench_nearest(c: &mut Criterion) {
    let mut group = c.benchmark_group("nearest_center");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let mut rng = Rng::new(2);
    for k in [10usize, 100, 500] {
        let dim = 42;
        let mut centers = PointMatrix::new(dim);
        for _ in 0..k {
            centers.push(&random_vec(dim, &mut rng)).unwrap();
        }
        let query = random_vec(dim, &mut rng);
        group.bench_with_input(BenchmarkId::new("pruned_scan", k), &k, |bench, _| {
            bench.iter(|| nearest(black_box(&query), black_box(&centers)))
        });
    }
    group.finish();
}

/// Parses the configuration axes back out of a record id
/// (`sq_dist/plain/15` → d = 15; `nearest_center/pruned_scan/100` → k).
fn record_for(id: &str, wall_ns: u128) -> KernelRecord {
    let param: usize = id.rsplit('/').next().and_then(|p| p.parse().ok()).unwrap();
    let (kernel, n, d, k) = if id.starts_with("sq_dist/plain") {
        ("sq_dist", 1, param, 0)
    } else if id.starts_with("sq_dist/bounded_inf") {
        ("sq_dist_bounded", 1, param, 0)
    } else {
        ("scalar_nearest_1pt", 1, 42, param)
    };
    KernelRecord {
        id: id.to_string(),
        kernel: kernel.to_string(),
        n,
        d,
        k,
        tile: 0, // scalar paths are untiled
        wall_ns,
        // Pair-level micro-benches: one evaluation per pair / k per scan
        // (analytic; the scalar scan has no counter plumbing).
        distance_computations: if k == 0 { 1 } else { k as u64 },
        pruned: 0,
    }
}

fn main() {
    let mut c = Criterion::default();
    bench_sq_dist(&mut c);
    bench_nearest(&mut c);
    let records: Vec<KernelRecord> = c
        .records()
        .iter()
        .map(|r| record_for(&r.id, r.median.as_nanos()))
        .collect();
    let path = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_kernels.json"
    ));
    write_merged(path, &records);
}
