//! Micro-bench: per-round cost of k-means|| vs the oversampling factor ℓ,
//! and ablation A3 — the "free Step 7" (tracked nearest ids) vs a naive
//! full weighting pass over all candidates.

use criterion::{criterion_group, criterion_main, Criterion};
use kmeans_core::cost::CostTracker;
use kmeans_core::distance::nearest;
use kmeans_core::init::{kmeans_parallel, KMeansParallelConfig};
use kmeans_data::synth::GaussMixture;
use kmeans_data::PointMatrix;
use kmeans_par::Executor;
use std::time::Duration;

fn bench_oversampling(c: &mut Criterion) {
    let k = 32;
    let synth = GaussMixture::new(k)
        .points(8_192)
        .center_variance(10.0)
        .generate(5)
        .unwrap();
    let points = synth.dataset.points();
    let exec = Executor::sequential();

    let mut group = c.benchmark_group("kmeans_par_full_run_n8192_k32");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let mut seed = 0u64;
    for factor in [0.5, 2.0, 8.0] {
        group.bench_function(format!("l_{factor}k"), |b| {
            let config = KMeansParallelConfig::default().oversampling_factor(factor);
            b.iter(|| {
                seed += 1;
                kmeans_parallel(points, k, &config, seed, &exec).unwrap()
            })
        });
    }
    group.finish();
}

/// Ablation A3: computing Step 7 weights from the tracked nearest ids is an
/// O(n) histogram; the naive alternative re-scans every candidate center
/// for every point (O(n·|C|·d)).
fn bench_step7(c: &mut Criterion) {
    let synth = GaussMixture::new(32)
        .points(8_192)
        .center_variance(10.0)
        .generate(6)
        .unwrap();
    let points = synth.dataset.points();
    let exec = Executor::sequential();
    // A realistic candidate set: ~2k·r + 1 = 321 candidates.
    let mut candidates = PointMatrix::new(points.dim());
    let mut rng = kmeans_util::Rng::new(9);
    for _ in 0..321 {
        candidates
            .push(points.row(rng.range_usize(points.len())))
            .unwrap();
    }
    let tracker = CostTracker::new(points, &candidates, &exec);

    let mut group = c.benchmark_group("step7_weights_n8192_c321");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("tracked_histogram", |b| {
        b.iter(|| tracker.weights(candidates.len()))
    });
    group.bench_function("naive_full_pass", |b| {
        b.iter(|| {
            let mut w = vec![0.0f64; candidates.len()];
            for row in points.rows() {
                w[nearest(row, &candidates).0] += 1.0;
            }
            w
        })
    });
    group.finish();
}

criterion_group!(benches, bench_oversampling, bench_step7);
criterion_main!(benches);
