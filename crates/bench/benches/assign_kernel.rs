//! The batch assignment kernel vs the scalar per-point path on
//! GaussMixture workloads — the headline single-node speedup of the
//! kernel PR, recorded machine-readably in `BENCH_kernels.json`
//! (kernel / n / d / k / tile / wall_ns / distance_computations /
//! pruned), merged with the pair-level records from
//! `benches/distance.rs`. (`tile` records the kernel's resident
//! candidate-feature block in bytes — the structure that replaced center
//! tiling; 0 for the untiled scalar path.)
//!
//! Results are bit-identical by contract (asserted up front on every
//! configuration — a diverging kernel would make the numbers
//! meaningless), so every delta is pure bound-based pruning: the sorted
//! sweep's wholesale side stops plus the per-candidate coordinate-gap
//! and norm filters.
//!
//! `KMEANS_BENCH_QUICK=1` shrinks the grid and measurement windows for
//! the CI smoke, which relies on the always-on assertion that the norm
//! bound actually prunes on the Gaussian-mixture workload.

use criterion::Criterion;
use kmeans_bench::bench_json::{write_merged, KernelRecord};
use kmeans_core::distance::nearest;
use kmeans_core::kernel::AssignKernel;
use kmeans_data::synth::GaussMixture;
use kmeans_data::PointMatrix;
use std::path::Path;
use std::time::Duration;

fn scalar_assign(points: &PointMatrix, centers: &PointMatrix, labels: &mut [u32], d2: &mut [f64]) {
    for (i, row) in points.rows().enumerate() {
        let (c, dist) = nearest(row, centers);
        labels[i] = c as u32;
        d2[i] = dist;
    }
}

struct Config {
    n: usize,
    d: usize,
    k: usize,
}

fn main() {
    let quick = std::env::var("KMEANS_BENCH_QUICK").is_ok_and(|v| v == "1");
    let configs: &[Config] = if quick {
        &[Config {
            n: 2_048,
            d: 16,
            k: 64,
        }]
    } else {
        &[
            Config {
                n: 8_192,
                d: 16,
                k: 64,
            },
            Config {
                n: 8_192,
                d: 16,
                k: 256,
            },
            Config {
                n: 8_192,
                d: 42,
                k: 64,
            },
            Config {
                n: 8_192,
                d: 42,
                k: 256,
            },
        ]
    };

    let mut c = Criterion::default();
    let mut records: Vec<KernelRecord> = Vec::new();

    for cfg in configs {
        let synth = GaussMixture::new(cfg.k)
            .dim(cfg.d)
            .points(cfg.n)
            .center_variance(100.0) // the paper's hard separation setting
            .generate(7)
            .unwrap();
        let points = synth.dataset.points().clone();
        // Centers as a refinement pass sees them: the true mixture
        // centers (any converging Lloyd run spends most of its passes
        // near them).
        let centers = synth.true_centers.clone();
        // The kernel's resident per-candidate feature block (norm + two
        // coordinates + index), reported as the `tile` axis.
        let feature_bytes = cfg.k * (3 * 8 + 4);

        // Parity gate: the kernel must reproduce the scalar path bitwise.
        let mut ref_labels = vec![0u32; cfg.n];
        let mut ref_d2 = vec![0.0f64; cfg.n];
        scalar_assign(&points, &centers, &mut ref_labels, &mut ref_d2);
        let kernel = AssignKernel::new(&centers);
        let mut labels = vec![0u32; cfg.n];
        let mut d2 = vec![0.0f64; cfg.n];
        let stats = kernel.assign(&points, 0..cfg.n, &mut labels, &mut d2);
        assert_eq!(labels, ref_labels, "kernel diverged");
        let bits: Vec<u64> = d2.iter().map(|v| v.to_bits()).collect();
        let ref_bits: Vec<u64> = ref_d2.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, ref_bits, "kernel d2 diverged");
        assert!(
            stats.pruned_by_norm_bound > 0,
            "kernel bounds pruned nothing on GaussMixture n={} d={} k={}",
            cfg.n,
            cfg.d,
            cfg.k
        );

        // Time scalar vs kernel, annotating each record with its work
        // counters through the shim's BenchRecord plumbing.
        let pairs = (cfg.n * cfg.k) as u64;
        let group_name = format!("assign_n{}_d{}_k{}", cfg.n, cfg.d, cfg.k);
        {
            let mut group = c.benchmark_group(&group_name);
            let (samples, measure) = if quick { (5, 400) } else { (15, 3_000) };
            group
                .sample_size(samples)
                .warm_up_time(Duration::from_millis(if quick { 50 } else { 300 }))
                .measurement_time(Duration::from_millis(measure));

            group
                .bench_function("scalar_per_point", |b| {
                    b.iter(|| scalar_assign(&points, &centers, &mut labels, &mut d2))
                })
                // The scalar path computes/abandons per pair but has no
                // counter plumbing; report the analytic pair count.
                .annotate_last("distance_computations", pairs as f64)
                .annotate_last("pruned", 0.0)
                .annotate_last("tile", 0.0);
            group
                .bench_function("kernel", |b| {
                    b.iter(|| kernel.assign(&points, 0..cfg.n, &mut labels, &mut d2))
                })
                .annotate_last("distance_computations", stats.distance_computations as f64)
                .annotate_last("pruned", stats.pruned_by_norm_bound as f64)
                .annotate_last("tile", feature_bytes as f64);
            group.finish();
        }

        // Collect the annotated records for this group into the artifact.
        let mut scalar_ns = 0u128;
        for record in c.records().iter().filter(|r| r.id.starts_with(&group_name)) {
            let scalar = record.id.ends_with("scalar_per_point");
            if scalar {
                scalar_ns = record.median.as_nanos();
            }
            records.push(KernelRecord {
                id: record.id.clone(),
                kernel: if scalar {
                    "scalar_per_point"
                } else {
                    "assign_kernel"
                }
                .to_string(),
                n: cfg.n,
                d: cfg.d,
                k: cfg.k,
                tile: record.metric("tile").unwrap_or(0.0) as usize,
                wall_ns: record.median.as_nanos(),
                distance_computations: record
                    .metric("distance_computations")
                    .unwrap_or(pairs as f64) as u64,
                pruned: record.metric("pruned").unwrap_or(0.0) as u64,
            });
            if !scalar && scalar_ns > 0 {
                // Speedup summary for the scrollback (the acceptance
                // observable).
                println!(
                    "{}: speedup {:.2}x over scalar ({:.1}% of pairs bound-pruned)",
                    record.id,
                    scalar_ns as f64 / record.median.as_nanos() as f64,
                    100.0 * record.metric("pruned").unwrap_or(0.0) / pairs as f64,
                );
            }
        }
    }

    let path = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_kernels.json"
    ));
    write_merged(path, &records);
}
