//! Micro-bench: one Lloyd iteration (assignment + centroid update),
//! sequential vs parallel shards — ablation A4's speedup curve.

use criterion::{criterion_group, criterion_main, Criterion};
use kmeans_core::accel::hamerly_lloyd;
use kmeans_core::lloyd::{lloyd, LloydConfig};
use kmeans_data::synth::GaussMixture;
use kmeans_par::{Executor, Parallelism};
use std::time::Duration;

fn bench_lloyd_iteration(c: &mut Criterion) {
    let k = 50;
    let synth = GaussMixture::new(k)
        .points(16_384)
        .center_variance(10.0)
        .generate(3)
        .unwrap();
    let points = synth.dataset.points();
    // A fixed, deterministic starting set: the ground-truth centers.
    let init = synth.true_centers.clone();
    let config = LloydConfig {
        max_iterations: 1,
        tol: 0.0,
    };

    let mut group = c.benchmark_group("lloyd_one_iteration_n16384_k50");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("sequential", |b| {
        let exec = Executor::sequential();
        b.iter(|| lloyd(points, &init, &config, &exec).unwrap())
    });
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut thread_counts = vec![2usize];
    if cores > 2 {
        thread_counts.push(cores);
    }
    for threads in thread_counts {
        group.bench_function(format!("threads_{threads}"), |b| {
            let exec = Executor::new(Parallelism::Threads(threads));
            b.iter(|| lloyd(points, &init, &config, &exec).unwrap())
        });
    }
    group.finish();

    // Hamerly pays off over full runs (bounds amortize across
    // iterations), so compare convergence runs rather than single steps.
    // The refiner-trait entries measure the same algorithms through the
    // pipeline API (labels + cost + accounting included), alongside the
    // mini-batch and seed-only refiners for the full refinement axis.
    let mut group = c.benchmark_group("refine_to_convergence_n16384_k50");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let full = LloydConfig::default();
    group.bench_function("plain", |b| {
        let exec = Executor::sequential();
        b.iter(|| lloyd(points, &init, &full, &exec).unwrap())
    });
    group.bench_function("hamerly", |b| {
        let exec = Executor::sequential();
        b.iter(|| hamerly_lloyd(points, &init, &full, &exec).unwrap())
    });
    use kmeans_core::minibatch::MiniBatchConfig;
    use kmeans_core::pipeline::{HamerlyLloyd, Lloyd, MiniBatch, NoRefine, Refiner};
    let refiners: Vec<(&str, Box<dyn Refiner>)> = vec![
        ("refiner_lloyd", Box::new(Lloyd(full))),
        ("refiner_hamerly", Box::new(HamerlyLloyd(full))),
        (
            "refiner_minibatch",
            Box::new(MiniBatch(MiniBatchConfig {
                batch_size: 1_024,
                iterations: 100,
            })),
        ),
        ("refiner_none", Box::new(NoRefine)),
    ];
    for (name, refiner) in refiners {
        group.bench_function(name, |b| {
            let exec = Executor::sequential();
            b.iter(|| refiner.refine(points, None, &init, 1, &exec).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lloyd_iteration);
criterion_main!(benches);
