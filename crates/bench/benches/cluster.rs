//! Distributed vs single-node wall time on the synthetic GAUSSMIXTURE
//! workload, over loopback workers — and the repo's first machine-
//! readable perf artifact: the run writes `BENCH_cluster.json` at the
//! workspace root with one record per configuration (method, n, d, k,
//! workers, median wall nanoseconds, bytes on the wire, data passes,
//! wire round trips), so successive PRs accumulate a perf trajectory
//! instead of scrollback.
//!
//! Results are bit-identical across the grid (asserted up front; pinned
//! for real in `tests/distributed_parity.rs`), so every delta is pure
//! coordination + wire overhead.

use criterion::Criterion;
use kmeans_cluster::{spawn_loopback_worker, Cluster, FitDistributed, Transport};
use kmeans_core::model::KMeans;
use kmeans_data::synth::GaussMixture;
use kmeans_data::{InMemorySource, PointMatrix};
use kmeans_par::Parallelism;
use std::io::Write;
use std::time::Duration;

const N: usize = 4_096;
const K: usize = 8;
const SHARD: usize = 256;

fn builder() -> KMeans {
    KMeans::params(K)
        .seed(1)
        .shard_size(SHARD)
        .parallelism(Parallelism::Sequential)
}

fn slice_rows(points: &PointMatrix, start: usize, rows: usize) -> PointMatrix {
    let dim = points.dim();
    PointMatrix::from_flat(
        points.as_slice()[start * dim..(start + rows) * dim].to_vec(),
        dim,
    )
    .unwrap()
}

type WorkerHandles = Vec<std::thread::JoinHandle<Result<(), kmeans_cluster::ClusterError>>>;

fn spawn_cluster(points: &PointMatrix, workers: usize) -> (Cluster, WorkerHandles) {
    let per = points.len() / workers;
    let mut transports: Vec<Box<dyn Transport>> = Vec::new();
    let mut handles = Vec::new();
    for w in 0..workers {
        let rows = if w + 1 == workers {
            points.len() - w * per
        } else {
            per
        };
        let source = InMemorySource::new(slice_rows(points, w * per, rows), 512).unwrap();
        let (transport, handle) = spawn_loopback_worker(source, Parallelism::Sequential);
        transports.push(Box::new(transport));
        handles.push(handle);
    }
    (Cluster::new(transports).unwrap(), handles)
}

fn shutdown(mut cluster: Cluster, handles: WorkerHandles) {
    cluster.shutdown();
    for h in handles {
        h.join()
            .expect("worker thread panicked")
            .expect("worker session failed");
    }
}

struct Record {
    method: &'static str,
    workers: usize,
    wall_ns: u128,
    bytes_on_wire: u64,
    data_passes: u64,
    round_trips: u64,
}

fn escape_free(s: &str) -> &str {
    debug_assert!(!s.contains('"') && !s.contains('\\'));
    s
}

fn write_json(records: &[Record], dim: usize) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"method\": \"{}\", \"n\": {N}, \"d\": {dim}, \"k\": {K}, \
             \"workers\": {}, \"wall_ns\": {}, \"bytes_on_wire\": {}, \"data_passes\": {}, \
             \"round_trips\": {}}}{}\n",
            escape_free(r.method),
            r.workers,
            r.wall_ns,
            r.bytes_on_wire,
            r.data_passes,
            r.round_trips,
            if i + 1 == records.len() { "" } else { "," },
        ));
    }
    out.push_str("]\n");
    let mut file = std::fs::File::create(path).expect("create BENCH_cluster.json");
    file.write_all(out.as_bytes())
        .expect("write BENCH_cluster.json");
    println!("wrote {} records -> BENCH_cluster.json", records.len());
}

fn main() {
    let synth = GaussMixture::new(K)
        .points(N)
        .center_variance(50.0)
        .generate(7)
        .unwrap();
    let points = synth.dataset.points().clone();
    let dim = points.dim();

    // Sanity: the grid compares equal results, or the numbers mean nothing.
    let reference = builder().fit(&points).unwrap();
    {
        let (mut cluster, handles) = spawn_cluster(&points, 2);
        let dist = builder().fit_distributed(&mut cluster).unwrap();
        shutdown(cluster, handles);
        assert_eq!(reference.centers(), dist.centers());
        assert_eq!(
            reference.cost().to_bits(),
            dist.cost().to_bits(),
            "distributed fit diverged; benchmark numbers would be meaningless"
        );
    }

    let mut c = Criterion::default();
    let mut records: Vec<Record> = Vec::new();
    {
        let mut group = c.benchmark_group(format!("cluster_gauss_n{N}_k{K}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(2));

        group.bench_function("in_memory", |b| b.iter(|| builder().fit(&points).unwrap()));

        for workers in [1usize, 2, 4] {
            let (mut cluster, handles) = spawn_cluster(&points, workers);
            group.bench_function(format!("loopback_w{workers}"), |b| {
                b.iter(|| builder().fit_distributed(&mut cluster).unwrap())
            });
            shutdown(cluster, handles);
        }
        group.finish();
    }

    // Wire accounting from one clean fit per worker count (byte counters
    // accumulate across iterations, so measure outside the timing loop).
    let mut wire: Vec<(usize, u64, u64, u64)> = Vec::new();
    for workers in [1usize, 2, 4] {
        let (mut cluster, handles) = spawn_cluster(&points, workers);
        builder().fit_distributed(&mut cluster).unwrap();
        wire.push((
            workers,
            cluster.bytes_sent() + cluster.bytes_received(),
            cluster.data_passes(),
            cluster.round_trips(),
        ));
        shutdown(cluster, handles);
    }

    for record in c.records() {
        let (method, workers, bytes, passes, trips) = if record.id.ends_with("in_memory") {
            ("in-memory kmeans-par+lloyd", 0, 0, 0, 0)
        } else {
            let workers: usize = record
                .id
                .rsplit("_w")
                .next()
                .and_then(|w| w.parse().ok())
                .expect("loopback id carries the worker count");
            let &(_, bytes, passes, trips) = wire
                .iter()
                .find(|(w, _, _, _)| *w == workers)
                .expect("wire stats recorded");
            (
                "distributed kmeans-par+lloyd (loopback)",
                workers,
                bytes,
                passes,
                trips,
            )
        };
        records.push(Record {
            method,
            workers,
            wall_ns: record.median.as_nanos(),
            bytes_on_wire: bytes,
            data_passes: passes,
            round_trips: trips,
        });
    }
    write_json(&records, dim);
}
