//! Load generator for the serving tier: concurrent clients hammer one
//! `skm serve` engine over real TCP with fixed-size predict batches, and
//! the run writes `BENCH_serve.json` (merge-by-id, like the other bench
//! artifacts) with p50/p99 request latency, QPS, and points/s per
//! (batch size × client count) configuration.
//!
//! Served answers are asserted bit-identical to the local
//! `KMeansModel::predict` up front — throughput numbers for a diverging
//! server would be meaningless. `KMEANS_BENCH_QUICK=1` shrinks the grid
//! and the request budget for CI smoke runs.

use kmeans_bench::bench_json::{write_merged_serve, ServeRecord};
use kmeans_cluster::ClusterError;
use kmeans_core::model::KMeans;
use kmeans_core::KMeansError;
use kmeans_data::synth::GaussMixture;
use kmeans_data::PointMatrix;
use kmeans_obs::percentile_nearest_rank;
use kmeans_par::{Executor, Parallelism};
use kmeans_serve::{spawn_tcp_serve, EngineConfig, ServeClient, ServeEngine};
use std::path::Path;
use std::time::{Duration, Instant};

const N: usize = 4_096;
const K: usize = 8;

fn slice_rows(points: &PointMatrix, start: usize, rows: usize) -> PointMatrix {
    let dim = points.dim();
    PointMatrix::from_flat(
        points.as_slice()[start * dim..(start + rows) * dim].to_vec(),
        dim,
    )
    .unwrap()
}

/// Whether a served error is an admission-control shed (the overload
/// configuration expects these; anything else is a real failure).
fn is_shed(err: &ClusterError) -> bool {
    matches!(err, ClusterError::KMeans(KMeansError::Data(msg)) if msg.contains("overloaded"))
}

/// One load-generator configuration: `clients` connections, each issuing
/// `requests_per_client` predicts of `batch` points. Returns per-request
/// latencies of *accepted* requests, the shed count, and the measured
/// wall time. Outside the overload configuration the shed count is 0
/// (the queue cap far exceeds the offered in-flight load).
fn run_load(
    addr: &str,
    data: &PointMatrix,
    batch: usize,
    clients: usize,
    requests_per_client: usize,
) -> (Vec<u128>, u64, Duration) {
    let started = Instant::now();
    let mut workers = Vec::new();
    for c in 0..clients {
        let addr = addr.to_string();
        // Each client cycles through its own window of the data so
        // batches are not byte-identical across clients.
        let queries: Vec<PointMatrix> = (0..requests_per_client)
            .map(|i| slice_rows(data, (c * 97 + i * 31) % (data.len() - batch), batch))
            .collect();
        workers.push(std::thread::spawn(move || {
            let mut client = ServeClient::connect(&addr, Some(Duration::from_secs(60))).unwrap();
            let mut latencies = Vec::with_capacity(queries.len());
            let mut shed = 0u64;
            for query in &queries {
                let sent = Instant::now();
                match client.predict(query) {
                    Ok(prediction) => {
                        latencies.push(sent.elapsed().as_nanos());
                        assert_eq!(prediction.labels.len(), query.len());
                    }
                    Err(e) if is_shed(&e) => shed += 1,
                    Err(e) => panic!("load client failed non-shed: {e}"),
                }
            }
            (latencies, shed)
        }));
    }
    let mut all = Vec::with_capacity(clients * requests_per_client);
    let mut shed_total = 0u64;
    for w in workers {
        let (latencies, shed) = w.join().expect("load client panicked");
        all.extend(latencies);
        shed_total += shed;
    }
    (all, shed_total, started.elapsed())
}

fn main() {
    let quick = std::env::var("KMEANS_BENCH_QUICK").is_ok_and(|v| v == "1");
    let synth = GaussMixture::new(K)
        .points(N)
        .center_variance(50.0)
        .generate(7)
        .unwrap();
    let points = synth.dataset.points().clone();
    let dim = points.dim();
    let model = KMeans::params(K)
        .seed(1)
        .parallelism(Parallelism::Sequential)
        .fit(&points)
        .unwrap();

    let engine = ServeEngine::new(model.to_record(), Executor::new(Parallelism::Threads(2)))
        .expect("engine from a fitted model");
    let (addr, handle) = spawn_tcp_serve(engine, Some(Duration::from_secs(60))).unwrap();
    let addr = addr.to_string();

    // Sanity: served answers match the local model bitwise, or the
    // throughput numbers mean nothing.
    {
        let mut client = ServeClient::connect(&addr, Some(Duration::from_secs(60))).unwrap();
        let probe = slice_rows(&points, 11, 64);
        let served = client.predict(&probe).unwrap();
        assert_eq!(served.labels, model.predict(&probe).unwrap());
        assert_eq!(
            served.cost.to_bits(),
            model.cost_of(&probe).unwrap().to_bits(),
            "served cost diverged from the local model"
        );
    }

    // batch size × client count grid (at least two configs even in quick
    // mode — the committed artifact must cover the plane).
    let grid: &[(usize, usize)] = if quick {
        &[(16, 2), (256, 4)]
    } else {
        &[(1, 1), (16, 1), (16, 4), (256, 2), (256, 8), (1024, 4)]
    };
    let requests_per_client = if quick { 50 } else { 400 };

    let mut records = Vec::new();
    for &(batch, clients) in grid {
        // Warm up connections/kernel, then measure.
        let _ = run_load(&addr, &points, batch, clients, requests_per_client / 10 + 1);
        let (mut latencies, shed, wall) =
            run_load(&addr, &points, batch, clients, requests_per_client);
        assert_eq!(shed, 0, "default queue cap shed under the bench grid");
        latencies.sort_unstable();
        let requests = latencies.len() as u64;
        let secs = wall.as_secs_f64().max(1e-9);
        let record = ServeRecord {
            id: format!("serve/tcp/b{batch}_c{clients}"),
            transport: "tcp".into(),
            batch,
            clients,
            requests,
            d: dim,
            k: K,
            p50_ns: percentile_nearest_rank(&latencies, 0.50),
            p99_ns: percentile_nearest_rank(&latencies, 0.99),
            qps: (requests as f64 / secs) as u64,
            points_per_sec: (requests as f64 * batch as f64 / secs) as u64,
            shed_requests: 0,
            shed_rate: 0.0,
        };
        println!(
            "{}: p50 {} ns, p99 {} ns, {} req/s, {} points/s",
            record.id, record.p50_ns, record.p99_ns, record.qps, record.points_per_sec
        );
        records.push(record);
    }

    ServeClient::connect(&addr, Some(Duration::from_secs(60)))
        .unwrap()
        .shutdown()
        .unwrap();
    handle.join().unwrap().unwrap();

    // Overload row: a queue cap of one request's worth of points under
    // many hammering clients — admission control must shed the excess
    // *typed* while the accepted requests keep bounded tails (this is
    // the row that shows overload degrades throughput, not latency).
    let (over_batch, over_clients) = if quick { (256, 4) } else { (256, 8) };
    let engine = ServeEngine::with_config(
        model.to_record(),
        Executor::new(Parallelism::Threads(2)),
        EngineConfig {
            queue_cap: over_batch,
            ..EngineConfig::default()
        },
    )
    .expect("engine from a fitted model");
    let (addr, handle) = spawn_tcp_serve(engine, Some(Duration::from_secs(60))).unwrap();
    let addr = addr.to_string();
    let _ = run_load(
        &addr,
        &points,
        over_batch,
        over_clients,
        requests_per_client / 10 + 1,
    );
    let (mut latencies, shed, wall) = run_load(
        &addr,
        &points,
        over_batch,
        over_clients,
        requests_per_client,
    );
    latencies.sort_unstable();
    let answered = latencies.len() as u64;
    let offered = answered + shed;
    let secs = wall.as_secs_f64().max(1e-9);
    let record = ServeRecord {
        id: format!("serve/tcp/overload_b{over_batch}_c{over_clients}"),
        transport: "tcp".into(),
        batch: over_batch,
        clients: over_clients,
        requests: answered,
        d: dim,
        k: K,
        p50_ns: percentile_nearest_rank(&latencies, 0.50),
        p99_ns: percentile_nearest_rank(&latencies, 0.99),
        qps: (answered as f64 / secs) as u64,
        points_per_sec: (answered as f64 * over_batch as f64 / secs) as u64,
        shed_requests: shed,
        shed_rate: shed as f64 / offered.max(1) as f64,
    };
    println!(
        "{}: p50 {} ns, p99 {} ns, {} req/s, shed {}/{} ({:.1}%)",
        record.id,
        record.p50_ns,
        record.p99_ns,
        record.qps,
        shed,
        offered,
        100.0 * record.shed_rate,
    );
    records.push(record);

    ServeClient::connect(&addr, Some(Duration::from_secs(60)))
        .unwrap()
        .shutdown()
        .unwrap();
    handle.join().unwrap().unwrap();

    let path = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_serve.json"
    ));
    write_merged_serve(path, &records);
}
