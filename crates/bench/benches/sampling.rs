//! Micro-bench: the weighted-sampling strategies behind the seeding
//! algorithms (one k-means++ draw = `weighted_pick`; static distributions
//! = alias vs cumulative; the exact-ℓ mode = Efraimidis–Spirakis).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kmeans_util::sampling::{weighted_distinct, weighted_pick, AliasSampler, CumulativeSampler};
use kmeans_util::Rng;
use std::time::Duration;

const N: usize = 10_000;

fn weights() -> Vec<f64> {
    let mut rng = Rng::new(7);
    (0..N).map(|_| rng.exponential(1.0)).collect()
}

fn bench_builds(c: &mut Criterion) {
    let w = weights();
    let mut group = c.benchmark_group("sampler_build_10k");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    group.bench_function("cumulative", |b| {
        b.iter(|| CumulativeSampler::new(black_box(&w)).unwrap())
    });
    group.bench_function("alias", |b| {
        b.iter(|| AliasSampler::new(black_box(&w)).unwrap())
    });
    group.finish();
}

fn bench_draws(c: &mut Criterion) {
    let w = weights();
    let total: f64 = w.iter().sum();
    let cumulative = CumulativeSampler::new(&w).unwrap();
    let alias = AliasSampler::new(&w).unwrap();
    let mut group = c.benchmark_group("sampler_draw_10k");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    group.bench_function("linear_scan_pick", |b| {
        let mut rng = Rng::new(1);
        b.iter(|| weighted_pick(black_box(&w), total, &mut rng))
    });
    group.bench_function("cumulative_log_n", |b| {
        let mut rng = Rng::new(2);
        b.iter(|| cumulative.sample(&mut rng))
    });
    group.bench_function("alias_o1", |b| {
        let mut rng = Rng::new(3);
        b.iter(|| alias.sample(&mut rng))
    });
    group.finish();
}

fn bench_without_replacement(c: &mut Criterion) {
    let w = weights();
    let mut group = c.benchmark_group("weighted_distinct_10k");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for m in [16usize, 256] {
        group.bench_function(format!("m={m}"), |b| {
            let mut rng = Rng::new(4);
            b.iter(|| weighted_distinct(black_box(&w), m, &mut rng))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_builds,
    bench_draws,
    bench_without_replacement
);
criterion_main!(benches);
