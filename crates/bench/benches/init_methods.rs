//! Micro-bench: seeding wall time — the Table 4 story in miniature.
//! k-means++ pays k sequential passes; k-means|| pays `1 + r` passes;
//! Random pays one. The second group sweeps the full Initializer×Refiner
//! grid through the `KMeans` builder — the composition axis the pipeline
//! API opened.

use criterion::{criterion_group, criterion_main, Criterion};
use kmeans_core::init::{InitMethod, KMeansParallelConfig};
use kmeans_core::minibatch::MiniBatchConfig;
use kmeans_core::model::KMeans;
use kmeans_core::pipeline::{HamerlyLloyd, Initializer, Lloyd, MiniBatch, NoRefine, Refiner};
use kmeans_data::synth::GaussMixture;
use kmeans_par::{Executor, Parallelism};
use kmeans_streaming::{Coreset, Partition};
use std::sync::Arc;
use std::time::Duration;

fn bench_init_methods(c: &mut Criterion) {
    let synth = GaussMixture::new(32)
        .points(4_096)
        .center_variance(10.0)
        .generate(1)
        .unwrap();
    let points = synth.dataset.points();
    let exec = Executor::sequential();
    let k = 32;

    let mut group = c.benchmark_group("seeding_n4096_k32");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let mut seed = 0u64;
    group.bench_function("random", |b| {
        b.iter(|| {
            seed += 1;
            InitMethod::Random.run(points, k, seed, &exec).unwrap()
        })
    });
    group.bench_function("kmeans_pp", |b| {
        b.iter(|| {
            seed += 1;
            InitMethod::KMeansPlusPlus
                .run(points, k, seed, &exec)
                .unwrap()
        })
    });
    for factor in [0.5, 2.0] {
        group.bench_function(format!("kmeans_par_l{factor}k_r5"), |b| {
            let init = InitMethod::KMeansParallel(
                KMeansParallelConfig::default().oversampling_factor(factor),
            );
            b.iter(|| {
                seed += 1;
                init.run(points, k, seed, &exec).unwrap()
            })
        });
    }
    group.finish();
}

/// The init×refine grid: every seeder × every refiner, one builder fit
/// each, on a mixture small enough that the full grid stays quick.
fn bench_init_refine_grid(c: &mut Criterion) {
    let synth = GaussMixture::new(16)
        .points(2_048)
        .center_variance(25.0)
        .generate(2)
        .unwrap();
    let points = synth.dataset.points();
    let k = 16;

    let inits: Vec<(&str, Arc<dyn Initializer>)> = vec![
        ("random", Arc::new(kmeans_core::pipeline::Random)),
        ("kmeans_pp", Arc::new(kmeans_core::pipeline::KMeansPlusPlus)),
        (
            "kmeans_par",
            Arc::new(kmeans_core::pipeline::KMeansParallel::default()),
        ),
        (
            "afk_mc2",
            Arc::new(kmeans_core::pipeline::AfkMc2 { chain_length: 100 }),
        ),
        ("partition", Arc::new(Partition::default())),
        ("coreset", Arc::new(Coreset { coreset_size: 128 })),
    ];
    let refiners: Vec<(&str, Arc<dyn Refiner>)> = vec![
        ("lloyd", Arc::new(Lloyd::default())),
        ("hamerly", Arc::new(HamerlyLloyd::default())),
        (
            "minibatch",
            Arc::new(MiniBatch(MiniBatchConfig {
                batch_size: 256,
                iterations: 50,
            })),
        ),
        ("none", Arc::new(NoRefine)),
    ];

    let mut group = c.benchmark_group("init_x_refine_n2048_k16");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let exec = Executor::sequential();
    let mut seed = 0u64;
    for (init_name, init) in &inits {
        for (refine_name, refiner) in &refiners {
            let init = Arc::clone(init);
            let refiner = Arc::clone(refiner);
            group.bench_function(format!("{init_name}+{refine_name}"), |b| {
                b.iter(|| {
                    seed += 1;
                    let seeded = init.init(points, None, k, seed, &exec).unwrap();
                    refiner
                        .refine(points, None, &seeded.centers, seed, &exec)
                        .unwrap()
                })
            });
        }
    }
    group.finish();

    // One end-to-end builder fit per seeder, as applications run it.
    let mut group = c.benchmark_group("builder_fit_n2048_k16");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    group.bench_function("kmeans_par+lloyd", |b| {
        b.iter(|| {
            seed += 1;
            KMeans::params(k)
                .seed(seed)
                .parallelism(Parallelism::Sequential)
                .fit(points)
                .unwrap()
        })
    });
    group.bench_function("coreset+hamerly", |b| {
        b.iter(|| {
            seed += 1;
            KMeans::params(k)
                .init(Coreset { coreset_size: 128 })
                .refine(HamerlyLloyd::default())
                .seed(seed)
                .parallelism(Parallelism::Sequential)
                .fit(points)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_init_methods, bench_init_refine_grid);
criterion_main!(benches);
