//! Micro-bench: seeding wall time — the Table 4 story in miniature.
//! k-means++ pays k sequential passes; k-means|| pays `1 + r` passes;
//! Random pays one.

use criterion::{criterion_group, criterion_main, Criterion};
use kmeans_core::init::{InitMethod, KMeansParallelConfig};
use kmeans_data::synth::GaussMixture;
use kmeans_par::Executor;
use std::time::Duration;

fn bench_init_methods(c: &mut Criterion) {
    let synth = GaussMixture::new(32)
        .points(4_096)
        .center_variance(10.0)
        .generate(1)
        .unwrap();
    let points = synth.dataset.points();
    let exec = Executor::sequential();
    let k = 32;

    let mut group = c.benchmark_group("seeding_n4096_k32");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let mut seed = 0u64;
    group.bench_function("random", |b| {
        b.iter(|| {
            seed += 1;
            InitMethod::Random.run(points, k, seed, &exec).unwrap()
        })
    });
    group.bench_function("kmeans_pp", |b| {
        b.iter(|| {
            seed += 1;
            InitMethod::KMeansPlusPlus
                .run(points, k, seed, &exec)
                .unwrap()
        })
    });
    for factor in [0.5, 2.0] {
        group.bench_function(format!("kmeans_par_l{factor}k_r5"), |b| {
            let init = InitMethod::KMeansParallel(
                KMeansParallelConfig::default().oversampling_factor(factor),
            );
            b.iter(|| {
                seed += 1;
                init.run(points, k, seed, &exec).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_init_methods);
criterion_main!(benches);
