//! Out-of-core vs in-memory grid on the synthetic GAUSSMIXTURE workload:
//! what block residency costs. The chunked paths produce bit-identical
//! results (asserted up front here, enforced in `tests/chunked_parity.rs`),
//! so every delta in this grid is pure I/O + orchestration overhead —
//! the price of not holding the `O(n·d)` payload resident.

use criterion::{criterion_group, criterion_main, Criterion};
use kmeans_core::model::KMeans;
use kmeans_data::synth::GaussMixture;
use kmeans_data::{write_block_file, BlockFileSource, ChunkedSource, InMemorySource};
use kmeans_par::Parallelism;
use std::sync::Arc;
use std::time::Duration;

const N: usize = 8_192;
const K: usize = 16;

fn builder() -> KMeans {
    KMeans::params(K)
        .seed(1)
        .shard_size(1_024)
        .parallelism(Parallelism::Sequential)
}

fn bench_out_of_core_grid(c: &mut Criterion) {
    let synth = GaussMixture::new(K)
        .points(N)
        .center_variance(50.0)
        .generate(7)
        .unwrap();
    let points = synth.dataset.points().clone();

    // Sanity: the grid compares equal results, or the numbers mean nothing.
    let reference = builder().fit(&points).unwrap();
    let chunked = builder()
        .data_source(InMemorySource::new(points.clone(), 1_024).unwrap())
        .fit_chunked()
        .unwrap();
    assert_eq!(reference.centers(), chunked.centers());

    let mut group = c.benchmark_group(format!("oocore_gauss_n{N}_k{K}"));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("in_memory", |b| b.iter(|| builder().fit(&points).unwrap()));

    for block_rows in [256usize, 1_024, 4_096] {
        let source = Arc::new(InMemorySource::new(points.clone(), block_rows).unwrap());
        group.bench_function(format!("chunked_mem_b{block_rows}"), |b| {
            let src: Arc<dyn ChunkedSource> = source.clone();
            b.iter(|| {
                builder()
                    .data_source_shared(src.clone())
                    .fit_chunked()
                    .unwrap()
            })
        });
    }

    // Disk-backed: a budget of ~2 blocks (streaming) vs the whole file
    // (everything cached after pass one).
    let path = std::env::temp_dir().join("kmeans_bench_oocore.skmb");
    write_block_file(&path, &points, 1_024).unwrap();
    let block_bytes = (1_024 * points.dim() * 8) as u64;
    for (label, budget) in [
        ("disk_budget_2blocks", 2 * block_bytes),
        ("disk_budget_full", 64 * block_bytes),
    ] {
        let source: Arc<dyn ChunkedSource> =
            Arc::new(BlockFileSource::open(&path, budget).unwrap());
        group.bench_function(label, |b| {
            b.iter(|| {
                builder()
                    .data_source_shared(source.clone())
                    .fit_chunked()
                    .unwrap()
            })
        });
    }
    group.finish();
    let _ = std::fs::remove_file(path);
}

criterion_group!(benches, bench_out_of_core_grid);
criterion_main!(benches);
