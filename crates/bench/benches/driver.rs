//! The backend-generic round drivers across all three execution modes —
//! the same `kmeans_core::driver` function on an in-memory backend, a
//! chunked backend, and loopback worker clusters — recorded
//! machine-readably in `BENCH_driver.json` (method / backend / n / d /
//! k / wall_ns / bytes_on_wire / data_passes / round_trips) via the
//! shared merge-by-id writer.
//!
//! Results are bit-identical across backends by contract (asserted up
//! front on every configuration; pinned for real in
//! `tests/driver_parity.rs`), so every delta between rows is pure
//! backend overhead: block streaming for `chunked`, coordination + wire
//! for `distributed-wN`.
//!
//! `KMEANS_BENCH_QUICK=1` shrinks the grid and measurement windows for
//! the CI smoke, and additionally asserts two gates: the round-count
//! budget (wire round trips are exactly reproducible on any machine —
//! see the quick block below) and that the driver's in-memory path
//! stayed within noise of the uncapped-Lloyd trajectory recorded in
//! `BENCH_cluster.json`. Wall-clock gates across machines are
//! inherently coarse — see the quick-mode block below for what that
//! one is (a runaway-regression backstop) and is not (a precision
//! gate).

use criterion::Criterion;
use kmeans_bench::bench_json::{read_wall_ns, write_merged_driver, DriverRecord};
use kmeans_cluster::{spawn_loopback_worker, Cluster, FitDistributed, Transport};
use kmeans_core::lloyd::LloydConfig;
use kmeans_core::minibatch::MiniBatchConfig;
use kmeans_core::model::{KMeans, KMeansModel};
use kmeans_core::pipeline::{Lloyd, MiniBatch};
use kmeans_data::synth::GaussMixture;
use kmeans_data::{InMemorySource, PointMatrix};
use kmeans_par::Parallelism;
use std::path::Path;
use std::time::Duration;

const K: usize = 8;
const SHARD: usize = 256;

fn slice_rows(points: &PointMatrix, start: usize, rows: usize) -> PointMatrix {
    let dim = points.dim();
    PointMatrix::from_flat(
        points.as_slice()[start * dim..(start + rows) * dim].to_vec(),
        dim,
    )
    .unwrap()
}

type WorkerHandles = Vec<std::thread::JoinHandle<Result<(), kmeans_cluster::ClusterError>>>;

fn spawn_cluster(points: &PointMatrix, workers: usize) -> (Cluster, WorkerHandles) {
    let per = points.len() / workers;
    let mut transports: Vec<Box<dyn Transport>> = Vec::new();
    let mut handles = Vec::new();
    for w in 0..workers {
        let rows = if w + 1 == workers {
            points.len() - w * per
        } else {
            per
        };
        let source = InMemorySource::new(slice_rows(points, w * per, rows), 512).unwrap();
        let (transport, handle) = spawn_loopback_worker(source, Parallelism::Sequential);
        transports.push(Box::new(transport));
        handles.push(handle);
    }
    (Cluster::new(transports).unwrap(), handles)
}

fn shutdown(mut cluster: Cluster, handles: WorkerHandles) {
    cluster.shutdown();
    for h in handles {
        h.join()
            .expect("worker thread panicked")
            .expect("worker session failed");
    }
}

struct Method {
    name: &'static str,
    builder: fn() -> KMeans,
}

fn kmeans_par_lloyd() -> KMeans {
    // Lloyd is capped at 5 iterations so this workload has a *fixed
    // round budget* — the quantity this bench gates on. The uncapped
    // fit converges after ~35 iterations on this mixture, which would
    // drown the k-means|| seeding rounds (the paper's subject, and the
    // target of the fused-round optimisation) in Lloyd assignment
    // round trips.
    KMeans::params(K)
        .refine(Lloyd(LloydConfig {
            max_iterations: 5,
            tol: 0.0,
        }))
        .seed(1)
        .shard_size(SHARD)
        .parallelism(Parallelism::Sequential)
}

fn kmeans_par_minibatch() -> KMeans {
    KMeans::params(K)
        .refine(MiniBatch(MiniBatchConfig {
            batch_size: 256,
            iterations: 40,
        }))
        .seed(1)
        .shard_size(SHARD)
        .parallelism(Parallelism::Sequential)
}

fn assert_bits_equal(a: &KMeansModel, b: &KMeansModel, what: &str) {
    assert_eq!(a.centers(), b.centers(), "{what}: centers diverged");
    assert_eq!(
        a.cost().to_bits(),
        b.cost().to_bits(),
        "{what}: cost diverged — benchmark numbers would be meaningless"
    );
    assert_eq!(
        a.pruned_by_norm_bound(),
        b.pruned_by_norm_bound(),
        "{what}: kernel counters diverged"
    );
}

fn main() {
    let quick = std::env::var("KMEANS_BENCH_QUICK").is_ok_and(|v| v == "1");
    let n: usize = if quick { 2_048 } else { 4_096 };
    let synth = GaussMixture::new(K)
        .points(n)
        .center_variance(50.0)
        .generate(7)
        .unwrap();
    let points = synth.dataset.points().clone();
    let dim = points.dim();
    let worker_grid: &[usize] = if quick { &[2] } else { &[1, 2, 4] };
    let methods = [
        Method {
            name: "kmeans-par+lloyd",
            builder: kmeans_par_lloyd,
        },
        Method {
            name: "kmeans-par+minibatch",
            builder: kmeans_par_minibatch,
        },
    ];

    // Sanity: the three backends must agree bitwise, or the numbers mean
    // nothing. (Mini-batch distributed is the path the driver layer
    // newly unlocked — it is asserted here too.)
    for method in &methods {
        let reference = (method.builder)().fit(&points).unwrap();
        let chunked = (method.builder)()
            .data_source(InMemorySource::new(points.clone(), 512).unwrap())
            .fit_chunked()
            .unwrap();
        assert_bits_equal(&reference, &chunked, method.name);
        let (mut cluster, handles) = spawn_cluster(&points, 2);
        let dist = (method.builder)().fit_distributed(&mut cluster).unwrap();
        shutdown(cluster, handles);
        assert_bits_equal(&reference, &dist, method.name);
    }

    let mut c = Criterion::default();
    {
        let mut group = c.benchmark_group(format!("driver_gauss_n{n}_k{K}"));
        if quick {
            group
                .sample_size(10)
                .warm_up_time(Duration::from_millis(100))
                .measurement_time(Duration::from_millis(500));
        } else {
            group
                .sample_size(10)
                .warm_up_time(Duration::from_millis(300))
                .measurement_time(Duration::from_secs(2));
        }
        for method in &methods {
            group.bench_function(format!("{}/in-memory", method.name), |b| {
                b.iter(|| (method.builder)().fit(&points).unwrap())
            });
            group.bench_function(format!("{}/chunked", method.name), |b| {
                b.iter(|| {
                    (method.builder)()
                        .data_source(InMemorySource::new(points.clone(), 512).unwrap())
                        .fit_chunked()
                        .unwrap()
                })
            });
            for &workers in worker_grid {
                let (mut cluster, handles) = spawn_cluster(&points, workers);
                group.bench_function(format!("{}/distributed-w{workers}", method.name), |b| {
                    b.iter(|| (method.builder)().fit_distributed(&mut cluster).unwrap())
                });
                shutdown(cluster, handles);
            }
        }
        group.finish();
    }

    // Wire accounting from one clean fit per (method, worker count) —
    // byte/round counters accumulate across iterations, so measure
    // outside the timing loop.
    let mut wire: Vec<(String, u64, u64, u64)> = Vec::new();
    let mut lloyd_round_trips: Option<u64> = None;
    for method in &methods {
        for &workers in worker_grid {
            let (mut cluster, handles) = spawn_cluster(&points, workers);
            (method.builder)().fit_distributed(&mut cluster).unwrap();
            if method.name == "kmeans-par+lloyd" {
                lloyd_round_trips = Some(cluster.round_trips());
            }
            wire.push((
                format!("{}/distributed-w{workers}", method.name),
                cluster.bytes_sent() + cluster.bytes_received(),
                cluster.data_passes(),
                cluster.round_trips(),
            ));
            shutdown(cluster, handles);
        }
    }

    let mut records: Vec<DriverRecord> = Vec::new();
    let mut in_memory_lloyd_wall: Option<u128> = None;
    for record in c.records() {
        let (method, backend) = record
            .id
            .rsplit_once('/')
            .map(|(head, backend)| {
                let method = head.rsplit('/').next().unwrap_or(head);
                (method.to_string(), backend.to_string())
            })
            .expect("bench ids are group/method/backend");
        let (bytes, passes, trips) = wire
            .iter()
            .find(|(id, _, _, _)| record.id.ends_with(id.as_str()))
            .map(|&(_, b, p, t)| (b, p, t))
            .unwrap_or((0, 0, 0));
        if method == "kmeans-par+lloyd" && backend == "in-memory" {
            in_memory_lloyd_wall = Some(record.median.as_nanos());
        }
        records.push(DriverRecord {
            id: record.id.clone(),
            method,
            backend,
            n,
            d: dim,
            k: K,
            wall_ns: record.median.as_nanos(),
            bytes_on_wire: bytes,
            data_passes: passes,
            round_trips: trips,
        });
    }
    let path = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_driver.json"
    ));
    write_merged_driver(path, &records);

    if quick {
        // CI smoke, part 1: the round-count regression gate. Unlike wall
        // clock, wire round trips are exactly reproducible on any
        // machine: the fused k-means|| + capped-Lloyd conversation costs
        // 1 initial gather + 5 fused tracker+sample compounds + 1 fused
        // tracker+weights compound + 1 potential + 5 Lloyd assignments
        // + 1 closing label-shipping assignment = 14. Any change that
        // sneaks an extra blocking round into the conversation fails
        // here deterministically.
        let trips = lloyd_round_trips.expect("quick grid always runs kmeans-par+lloyd");
        assert!(
            trips <= 14,
            "kmeans-par+lloyd distributed conversation took {trips} wire round trips \
             (budget: 14) — a round snuck back into the fused driver"
        );
        println!("quick smoke: kmeans-par+lloyd round_trips {trips} (budget 14)");

        // CI smoke, part 2: the driver's in-memory path must sit within
        // noise of the committed trajectory. BENCH_cluster.json's
        // in-memory row is the *uncapped* Lloyd fit at n = 4096
        // (~3x this quick run's capped-Lloyd work at n = 2048), so a
        // same-machine run is expected several times faster — requiring
        // current ≤ 2x recorded still catches a runaway regression (an
        // accidental per-round clone of the dataset, an extra full data
        // pass — the failure modes a driver abstraction could plausibly
        // introduce) while absorbing machine-to-machine variance. It is
        // deliberately NOT a tight gate: absolute wall clock across
        // unknown runners cannot be one; the precise same-machine
        // comparison lives in the committed BENCH_driver.json rows.
        let cluster_json = Path::new(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_cluster.json"
        ));
        match (
            in_memory_lloyd_wall,
            read_wall_ns(cluster_json, "in-memory kmeans-par+lloyd"),
        ) {
            (Some(now), Some(recorded)) => {
                assert!(
                    now <= recorded.saturating_mul(2),
                    "driver in-memory path regressed: {now} ns (n = {n}) vs {recorded} ns \
                     recorded pre-refactor at n = 4096 in BENCH_cluster.json"
                );
                println!(
                    "quick smoke: in-memory kmeans-par+lloyd {now} ns (n = {n}) vs \
                     {recorded} ns pre-refactor (n = 4096) — within noise"
                );
            }
            (now, recorded) => println!(
                "quick smoke: no baseline comparison (current: {now:?}, recorded: {recorded:?})"
            ),
        }
    }
}
