//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment for this workspace has no network access, so the
//! real `criterion` crate cannot be vendored. This shim implements the
//! subset of its API the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! [`BenchmarkId`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros — with a simple median-of-samples timer, so
//! `cargo bench` runs everywhere and prints comparable numbers. Swap the
//! path dependency back to crates.io `criterion` for statistically rigorous
//! results.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-implementation of `std::hint::black_box` passthrough used by benches.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark (`group/function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// The timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    measurement: Duration,
    warm_up: Duration,
    results: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly: a warm-up window, then `samples` timed samples
    /// (each sample iterates until the per-sample time slice is spent).
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warm_up;
        let mut iters_per_sample = 1u64;
        while Instant::now() < warm_end {
            black_box(f());
            iters_per_sample += 1;
        }
        let slice = self.measurement.div_f64(self.samples.max(1) as f64);
        for _ in 0..self.samples {
            let start = Instant::now();
            let mut iters = 0u64;
            loop {
                black_box(f());
                iters += 1;
                if start.elapsed() >= slice || iters >= iters_per_sample.max(1) {
                    break;
                }
            }
            self.results.push(start.elapsed().div_f64(iters as f64));
        }
    }
}

/// One completed benchmark's summary, collected on the [`Criterion`]
/// driver so harnesses can post-process results (e.g. the machine-
/// readable `BENCH_cluster.json` / `BENCH_kernels.json` artifacts
/// emitted by `benches/cluster.rs` and `benches/assign_kernel.rs`).
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// `group/id` of the benchmark.
    pub id: String,
    /// Median over the timed samples.
    pub median: Duration,
    /// Number of timed samples.
    pub samples: usize,
    /// Free-form numeric annotations attached by the bench harness after
    /// the run (work counters, configuration axes) via
    /// [`Criterion::annotate_last`] — real criterion has no equivalent,
    /// but machine-readable perf artifacts need the counters next to the
    /// timings.
    pub metrics: Vec<(String, f64)>,
}

impl BenchRecord {
    /// Looks up an annotation by key.
    pub fn metric(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Warm-up duration before sampling begins.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            measurement: self.measurement,
            warm_up: self.warm_up,
            results: Vec::new(),
        };
        f(&mut bencher);
        let mut sorted = bencher.results.clone();
        sorted.sort();
        let median = sorted
            .get(sorted.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        println!(
            "{}/{}: median {:?} over {} samples",
            self.name,
            id,
            median,
            sorted.len()
        );
        self.criterion.records.push(BenchRecord {
            id: format!("{}/{}", self.name, id),
            median,
            samples: sorted.len(),
            metrics: Vec::new(),
        });
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl ToString, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b| f(b, input));
        self
    }

    /// Attaches a numeric annotation to the most recently completed
    /// benchmark of this run (see [`Criterion::annotate_last`]); chains
    /// after `bench_function` so counters land on the record they
    /// describe.
    pub fn annotate_last(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        self.criterion.annotate_last(key, value);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    records: Vec<BenchRecord>,
}

impl Criterion {
    /// Starts a new benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_secs(1),
            criterion: self,
        }
    }

    /// Every benchmark completed so far, in run order.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Attaches a numeric annotation to the most recently completed
    /// benchmark (no-op before the first one) — how harnesses thread
    /// work counters and configuration axes into their JSON artifacts.
    pub fn annotate_last(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        if let Some(last) = self.records.last_mut() {
            last.metrics.push((key.into(), value));
        }
        self
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl ToString, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench")
            .bench_function(id.to_string(), f);
        self
    }
}

/// Collects benchmark functions into a runnable group, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($fun:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($fun(&mut c);)+
        }
    };
}

/// Entry point: runs every `criterion_group!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 42).to_string(), "f/42");
    }

    #[test]
    fn records_are_collected_for_post_processing() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(2)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(4));
            g.bench_function("a", |b| b.iter(|| black_box(1 + 1)));
            g.bench_function("b", |b| b.iter(|| black_box(2 + 2)));
            g.finish();
        }
        let records = c.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].id, "grp/a");
        assert_eq!(records[1].id, "grp/b");
        assert!(records.iter().all(|r| r.samples == 2));
    }

    #[test]
    fn annotations_attach_to_the_last_record() {
        let mut c = Criterion::default();
        c.annotate_last("before_any", 1.0); // no-op, nothing recorded yet
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(1)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(2));
            g.bench_function("a", |b| b.iter(|| black_box(1)));
            g.finish();
        }
        c.annotate_last("n", 42.0).annotate_last("pruned", 7.0);
        let r = &c.records()[0];
        assert_eq!(r.metric("n"), Some(42.0));
        assert_eq!(r.metric("pruned"), Some(7.0));
        assert_eq!(r.metric("missing"), None);
        assert_eq!(r.metric("before_any"), None);
    }
}
