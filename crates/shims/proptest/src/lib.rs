//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be vendored. This shim implements the subset of its API the
//! workspace's property tests use: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `prop_filter`, range and tuple strategies,
//! [`collection::vec`], [`arbitrary::any`], [`ProptestConfig`], and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Semantics differ from real proptest in two deliberate ways: case
//! generation is **deterministic** (a fixed per-case seed, so failures
//! reproduce exactly with no persistence file), and there is **no
//! shrinking** — a failing case reports its assertion directly.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case-level randomness (SplitMix64).

    /// Per-case RNG. Each test case derives an independent stream from the
    /// case index, so runs are reproducible everywhere.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for one test case.
        pub fn from_case(case: u64) -> Self {
            // Fixed golden-ratio offset keeps streams well separated.
            TestRng {
                state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }

        /// Next 64 uniform bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Modulo bias is irrelevant at test-generation quality.
            self.next_u64() % n
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects values failing `pred` (resamples; panics after 1 000
        /// consecutive rejections — proptest would likewise abort).
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive samples: {}",
                self.reason
            );
        }
    }

    impl Strategy for Range<u64> {
        type Value = u64;
        fn sample(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty u64 range strategy");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl Strategy for Range<usize> {
        type Value = usize;
        fn sample(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty usize range strategy");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + rng.unit() * (self.end - self.start)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.sample(rng),
                self.1.sample(rng),
                self.2.sample(rng),
                self.3.sample(rng),
            )
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: an exact size or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// See [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 32 keeps the offline suite quick
        // while still sweeping a meaningful input range.
        ProptestConfig { cases: 32 }
    }
}

/// Property assertion (no shrinking, so this is plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` looping over `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::from_case(__case as u64);
                    $(let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_case(3);
        for _ in 0..200 {
            let u = Strategy::sample(&(5u64..17), &mut rng);
            assert!((5..17).contains(&u));
            let s = Strategy::sample(&(2usize..4), &mut rng);
            assert!((2..4).contains(&s));
            let f = Strategy::sample(&(-1.0f64..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = crate::test_runner::TestRng::from_case(9);
        let strat = (1usize..4, 1usize..4)
            .prop_flat_map(|(n, d)| crate::collection::vec(0.0f64..1.0, n * d))
            .prop_map(|v| v.len())
            .prop_filter("nonempty", |&n| n > 0);
        for _ in 0..100 {
            let len = Strategy::sample(&strat, &mut rng);
            assert!((1..=9).contains(&len));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_cases(x in 0u64..10, v in crate::collection::vec(any::<u64>(), 0..3)) {
            prop_assert!(x < 10);
            prop_assert_eq!(v.len() <= 2, true);
        }
    }
}
