use kmeans_core::distance::sq_dist_bounded;
use kmeans_core::kernel::AssignKernel;
use kmeans_data::PointMatrix;

#[test]
fn update_with_tight_carried_best_finds_mid_flank_winner() {
    // Sorted-by-key layout (key_dim = 0 thanks to the +-1e5 outposts):
    //   outpost(-1e5), W(-0.05), D1..D4 (decoys, huge 3rd coord), M(2, huge
    //   3rd coord), F(4), outpost(+1e5)
    // Point x = origin, carried best d2 = 0.01. True winner is W with
    // d2 = 0.0025.
    let mut centers = PointMatrix::new(3);
    centers.push(&[-1.0e5, 0.0, 0.0]).unwrap(); // 0 outpost
    centers.push(&[-0.05, 0.0, 0.0]).unwrap(); // 1 = W, true winner
    centers.push(&[-0.03, 0.0, 1000.0]).unwrap(); // 2 decoy
    centers.push(&[-0.02, 0.0, 1000.0]).unwrap(); // 3 decoy
    centers.push(&[-0.01, 0.0, 1000.0]).unwrap(); // 4 decoy
    centers.push(&[0.005, 0.0, 1000.0]).unwrap(); // 5 decoy (pos0)
    centers.push(&[2.0, 0.0, 1000.0]).unwrap(); // 6 = M (mid-flank trigger)
    centers.push(&[4.0, 0.0, 0.0]).unwrap(); // 7 = F (intended seed)
    centers.push(&[1.0e5, 0.0, 0.0]).unwrap(); // 8 outpost

    let points = PointMatrix::from_flat(vec![0.0, 0.0, 0.0], 3).unwrap();

    // Scalar reference: the tracker-update loop over every center with the
    // carried best.
    let row = points.row(0);
    let mut ref_best = 0.01f64;
    let mut ref_label = 0u32;
    let mut ref_id = u32::MAX;
    for c in 0..centers.len() {
        let d = sq_dist_bounded(row, centers.row(c), ref_best);
        if d < ref_best {
            ref_best = d;
            ref_id = c as u32;
        }
    }
    if ref_id != u32::MAX {
        ref_label = ref_id;
    }

    let kernel = AssignKernel::new(&centers);
    let mut labels = vec![0u32; 1];
    let mut d2 = vec![0.01f64; 1];
    kernel.update(&points, 0..1, &mut labels, &mut d2);

    assert_eq!(
        (labels[0], d2[0].to_bits()),
        (ref_label, ref_best.to_bits()),
        "kernel: label {} d2 {}, scalar: label {} d2 {}",
        labels[0],
        d2[0],
        ref_label,
        ref_best
    );
}
