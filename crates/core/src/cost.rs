//! The clustering potential `φ_X(C)` and its incremental maintenance.
//!
//! Both seeding algorithms repeatedly need, for every point `x`, the
//! quantity `d²(x, C)` under a center set `C` that only ever *grows*.
//! [`CostTracker`] maintains the `d²` array (and the identity of each
//! point's nearest center) across center additions:
//!
//! * adding `m` new centers costs `O(n · m · d)` — only the new centers are
//!   scanned, with partial-distance pruning against the current `d²`;
//! * the potential `φ_X(C) = Σ d²(x, C)` is re-summed in `O(n)`;
//! * Step 7 of Algorithm 2 (candidate weights = how many points are closest
//!   to each candidate) becomes a free `O(n)` histogram, because the
//!   nearest-center ids were tracked all along — this is the "free Step 7"
//!   design decision in DESIGN.md §4.
//!
//! All passes run on the deterministic shard executor.

use crate::distance::nearest;
use crate::kernel::AssignKernel;
use kmeans_data::PointMatrix;
use kmeans_par::Executor;

/// Computes the k-means potential `φ_X(C) = Σ_x d²(x, C)` in one parallel
/// pass.
///
/// # Panics
///
/// Panics if `centers` is empty or dimensionalities differ.
pub fn potential(points: &PointMatrix, centers: &PointMatrix, exec: &Executor) -> f64 {
    assert!(!centers.is_empty(), "potential: no centers");
    assert_eq!(points.dim(), centers.dim(), "potential: dim mismatch");
    let kernel = AssignKernel::new(centers);
    exec.map_reduce(
        points.len(),
        |_, range| {
            // Kernel pass per shard; the d² values (and the sum order)
            // are bit-identical to the old per-point scalar loop.
            let mut labels = vec![0u32; range.len()];
            let mut d2 = vec![0.0f64; range.len()];
            kernel.assign(points, range, &mut labels, &mut d2);
            d2.iter().sum::<f64>()
        },
        |a, b| a + b,
    )
    .unwrap_or(0.0)
}

/// Weighted potential `Σ_x w_x · d²(x, C)` (sequential; used on candidate
/// sets, which are small).
///
/// # Panics
///
/// Panics if lengths or dimensionalities disagree, or `centers` is empty.
pub fn weighted_potential(points: &PointMatrix, weights: &[f64], centers: &PointMatrix) -> f64 {
    assert_eq!(points.len(), weights.len(), "weighted_potential: lengths");
    assert!(!centers.is_empty(), "weighted_potential: no centers");
    let mut sum = 0.0;
    for (i, row) in points.rows().enumerate() {
        sum += weights[i] * nearest(row, centers).1;
    }
    sum
}

/// Maintains `d²(x, C)` and `argmin_c ‖x−c‖` for a growing center set `C`.
pub struct CostTracker<'a> {
    points: &'a PointMatrix,
    d2: Vec<f64>,
    nearest_id: Vec<u32>,
    total: f64,
}

impl<'a> CostTracker<'a> {
    /// Builds the tracker for an initial (non-empty) center set.
    ///
    /// # Panics
    ///
    /// Panics if `centers` is empty or dimensionalities differ.
    pub fn new(points: &'a PointMatrix, centers: &PointMatrix, exec: &Executor) -> Self {
        assert!(!centers.is_empty(), "CostTracker: no centers");
        assert_eq!(points.dim(), centers.dim(), "CostTracker: dim mismatch");
        let n = points.len();
        let mut d2 = vec![0.0f64; n];
        let mut nearest_id = vec![0u32; n];
        let kernel = AssignKernel::new(centers);
        exec.update_shards2(&mut d2, &mut nearest_id, |_, start, cd, cn| {
            kernel.assign(points, start..start + cd.len(), cn, cd);
        });
        let mut tracker = CostTracker {
            points,
            d2,
            nearest_id,
            total: 0.0,
        };
        tracker.resum(exec);
        tracker
    }

    /// Incorporates centers `centers[from..]` (those at index ≥ `from` are
    /// treated as new; earlier ones are assumed already incorporated).
    ///
    /// Point `i`'s entry changes only if some new center is strictly closer,
    /// in which case `nearest_id[i]` becomes the new center's index.
    pub fn update(&mut self, centers: &PointMatrix, from: usize, exec: &Executor) {
        assert_eq!(
            self.points.dim(),
            centers.dim(),
            "CostTracker::update: dim mismatch"
        );
        if from >= centers.len() {
            return;
        }
        let points = self.points;
        // Scan only the new suffix, pruned by the carried best (norm bound
        // first, partial-distance abandon inside) — same bits as before.
        let kernel = AssignKernel::suffix(centers, from);
        exec.update_shards2(&mut self.d2, &mut self.nearest_id, |_, start, cd, cn| {
            kernel.update(points, start..start + cd.len(), cn, cd);
        });
        self.resum(exec);
    }

    /// Recomputes the cached potential (shard-ordered sum).
    fn resum(&mut self, exec: &Executor) {
        let d2 = &self.d2;
        self.total = exec
            .map_reduce(
                d2.len(),
                |_, range| range.map(|i| d2[i]).sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap_or(0.0);
    }

    /// The current potential `φ_X(C)`.
    pub fn potential(&self) -> f64 {
        self.total
    }

    /// Per-point squared distances to the nearest center.
    pub fn d2(&self) -> &[f64] {
        &self.d2
    }

    /// Per-point nearest-center indices.
    pub fn nearest_ids(&self) -> &[u32] {
        &self.nearest_id
    }

    /// Number of points covered (distance exactly zero).
    pub fn covered(&self) -> usize {
        self.d2.iter().filter(|&&d| d == 0.0).count()
    }

    /// Step 7 of Algorithm 2: for each of the `m` centers, the number of
    /// points whose nearest center it is. An `O(n)` histogram — no extra
    /// pass over the feature vectors.
    pub fn weights(&self, m: usize) -> Vec<f64> {
        let mut w = vec![0.0f64; m];
        for &id in &self.nearest_id {
            w[id as usize] += 1.0;
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmeans_par::Parallelism;

    fn grid_points() -> PointMatrix {
        // 100 points on a line: 0, 1, ..., 99 (1-D).
        PointMatrix::from_flat((0..100).map(|i| i as f64).collect(), 1).unwrap()
    }

    #[test]
    fn potential_matches_manual_sum() {
        let points = grid_points();
        let centers = PointMatrix::from_flat(vec![0.0, 99.0], 1).unwrap();
        let exec = Executor::sequential().with_shard_size(16);
        let phi = potential(&points, &centers, &exec);
        let manual: f64 = (0..100)
            .map(|i| {
                let d0 = i as f64;
                let d1 = 99.0 - i as f64;
                d0.min(d1).powi(2)
            })
            .sum();
        assert!((phi - manual).abs() < 1e-9);
    }

    #[test]
    fn potential_parallel_matches_sequential_bitwise() {
        let points = grid_points();
        let centers = PointMatrix::from_flat(vec![10.0, 60.0], 1).unwrap();
        let seq = potential(
            &points,
            &centers,
            &Executor::sequential().with_shard_size(8),
        );
        for threads in [2, 5] {
            let par = potential(
                &points,
                &centers,
                &Executor::new(Parallelism::Threads(threads)).with_shard_size(8),
            );
            assert_eq!(seq.to_bits(), par.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn weighted_potential_scales_with_weights() {
        let points = PointMatrix::from_flat(vec![0.0, 2.0], 1).unwrap();
        let centers = PointMatrix::from_flat(vec![0.0], 1).unwrap();
        let w1 = weighted_potential(&points, &[1.0, 1.0], &centers);
        assert!((w1 - 4.0).abs() < 1e-12);
        let w2 = weighted_potential(&points, &[1.0, 10.0], &centers);
        assert!((w2 - 40.0).abs() < 1e-12);
    }

    #[test]
    fn tracker_matches_full_recompute_after_updates() {
        let points = grid_points();
        let exec = Executor::sequential().with_shard_size(32);
        let mut all_centers = PointMatrix::from_flat(vec![0.0], 1).unwrap();
        let mut tracker = CostTracker::new(&points, &all_centers, &exec);
        assert!((tracker.potential() - potential(&points, &all_centers, &exec)).abs() < 1e-9);

        // Add centers in two batches; tracker must agree with recompute.
        for batch in [vec![50.0, 80.0], vec![99.0]] {
            let from = all_centers.len();
            for v in batch {
                all_centers.push(&[v]).unwrap();
            }
            tracker.update(&all_centers, from, &exec);
            let expected = potential(&points, &all_centers, &exec);
            assert!(
                (tracker.potential() - expected).abs() < 1e-9,
                "tracker {} vs recompute {}",
                tracker.potential(),
                expected
            );
        }
        // nearest ids must be globally correct, not just suffix-correct.
        for (i, row) in points.rows().enumerate() {
            let (expect_id, expect_d2) = nearest(row, &all_centers);
            assert_eq!(tracker.nearest_ids()[i], expect_id as u32, "point {i}");
            assert!((tracker.d2()[i] - expect_d2).abs() < 1e-12);
        }
    }

    #[test]
    fn tracker_weights_histogram() {
        let points = PointMatrix::from_flat(vec![0.0, 1.0, 2.0, 10.0, 11.0], 1).unwrap();
        let centers = PointMatrix::from_flat(vec![1.0, 10.5], 1).unwrap();
        let exec = Executor::sequential();
        let tracker = CostTracker::new(&points, &centers, &exec);
        let w = tracker.weights(2);
        assert_eq!(w, vec![3.0, 2.0]);
        assert!((w.iter().sum::<f64>() - points.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn tracker_covered_counts_zero_distance() {
        let points = PointMatrix::from_flat(vec![0.0, 5.0, 5.0, 7.0], 1).unwrap();
        let centers = PointMatrix::from_flat(vec![5.0], 1).unwrap();
        let tracker = CostTracker::new(&points, &centers, &Executor::sequential());
        assert_eq!(tracker.covered(), 2);
    }

    #[test]
    fn update_with_no_new_centers_is_noop() {
        let points = grid_points();
        let centers = PointMatrix::from_flat(vec![3.0], 1).unwrap();
        let exec = Executor::sequential();
        let mut tracker = CostTracker::new(&points, &centers, &exec);
        let before = tracker.potential();
        tracker.update(&centers, 1, &exec);
        tracker.update(&centers, 99, &exec);
        assert_eq!(tracker.potential(), before);
    }

    #[test]
    fn tracker_identical_across_thread_counts() {
        let points = grid_points();
        let mut centers = PointMatrix::from_flat(vec![0.0], 1).unwrap();
        let build = |exec: &Executor| {
            let mut c = PointMatrix::from_flat(vec![0.0], 1).unwrap();
            let mut t = CostTracker::new(&points, &c, exec);
            c.push(&[42.0]).unwrap();
            t.update(&c, 1, exec);
            (t.d2().to_vec(), t.nearest_ids().to_vec(), t.potential())
        };
        centers.push(&[42.0]).unwrap();
        let reference = build(&Executor::sequential().with_shard_size(8));
        for threads in [2, 4] {
            let got = build(&Executor::new(Parallelism::Threads(threads)).with_shard_size(8));
            assert_eq!(got.0, reference.0);
            assert_eq!(got.1, reference.1);
            assert_eq!(got.2.to_bits(), reference.2.to_bits());
        }
    }
}
