//! The pluggable seeding/refinement pipeline: [`Initializer`] and
//! [`Refiner`] traits plus the core implementations of both.
//!
//! The paper's central observation is that seeding and refinement are
//! independent, swappable stages: Tables 1–6 mix k-means||, k-means++,
//! Random and Partition seeds with Lloyd refinement, and §7 asks whether
//! refinement modifications (Sculley's mini-batch \[31]) parallelize as
//! well. This module makes that composition a first-class, object-safe
//! API: any `Initializer` can feed any `Refiner` through the
//! [`KMeans`](crate::model::KMeans) builder.
//!
//! Core initializers: [`Random`], [`KMeansPlusPlus`], [`KMeansParallel`],
//! [`AfkMc2`]. The streaming seeders (Partition, coreset tree) implement
//! the same trait from the `kmeans-streaming` crate.
//!
//! Refiners: [`Lloyd`], [`HamerlyLloyd`], [`MiniBatch`], and [`NoRefine`]
//! (seed-only — the Table 1/2 "seed cost" studies are `NoRefine` runs).
//! Every refiner returns a unified [`RefineResult`] including a
//! distance-evaluation count, so Hamerly's pruning stays observable next
//! to plain Lloyd's `n·k` per iteration.
//!
//! Weighted data flows through both stages via the `weights` parameter
//! (`KMeans::weights` plumbs it): `Random`, `KMeansPlusPlus`, `Lloyd` and
//! `NoRefine` honor per-point weights; the remaining algorithms reject
//! weighted input with a typed error rather than silently ignoring it.

use crate::accel::hamerly_lloyd;
use crate::assign::{assign_and_sum, assign_weighted};
use crate::cost::{potential, weighted_potential};
use crate::driver::{
    drive_kmeans_parallel, drive_label_pass, drive_lloyd, drive_minibatch, drive_random_init,
    finish_init_backend, BackendKind, ChunkedBackend, RoundBackend,
};
use crate::error::KMeansError;
use crate::init::{
    afk_mc2, kmeans_parallel, kmeanspp, kmeanspp_chunked, random_init, validate, weighted_kmeanspp,
    InitResult, InitStats, KMeansParallelConfig,
};
use crate::lloyd::{
    lloyd, validate_refine_inputs, weighted_lloyd_traced, IterationStats, LloydConfig,
};
use crate::minibatch::{minibatch_kmeans_traced, MiniBatchConfig};
use kmeans_data::{ChunkedSource, PointMatrix};
use kmeans_par::Executor;
use kmeans_util::sampling::{uniform_distinct, weighted_distinct};
use kmeans_util::timing::Stopwatch;
use kmeans_util::Rng;
use std::fmt;

/// A seeding stage: produces exactly `k` centers (plus accounting) from a
/// dataset, an optional per-point weight vector, a seed, and an executor.
///
/// Object-safe: the [`KMeans`](crate::model::KMeans) builder stores
/// `Arc<dyn Initializer>`, so implementations can live in other crates
/// (the streaming seeders do).
///
/// ```
/// use kmeans_core::pipeline::{Initializer, KMeansParallel};
/// use kmeans_data::{InMemorySource, PointMatrix};
/// use kmeans_par::Executor;
///
/// let points = PointMatrix::from_flat((0..200).map(f64::from).collect(), 2).unwrap();
/// let exec = Executor::sequential();
/// // In-memory and chunked entry points of the same stage agree bitwise.
/// let seeder = KMeansParallel::default();
/// let mem = seeder.init(&points, None, 4, 7, &exec).unwrap();
/// let source = InMemorySource::new(points, 16).unwrap();
/// let chunked = seeder.init_chunked(&source, 4, 7, &exec).unwrap();
/// assert_eq!(mem.centers, chunked.centers);
/// ```
pub trait Initializer: fmt::Debug + Send + Sync {
    /// Stable lower-case name used in reports and CLI output.
    fn name(&self) -> &'static str;

    /// Runs the seeding. The seed fully determines the outcome given the
    /// executor's shard size (worker count never matters).
    fn init(
        &self,
        points: &PointMatrix,
        weights: Option<&[f64]>,
        k: usize,
        seed: u64,
        exec: &Executor,
    ) -> Result<InitResult, KMeansError>;

    /// Runs the seeding over any [`RoundBackend`] — the **one**
    /// backend-taking entry point behind both
    /// [`KMeans::fit_chunked`](crate::model::KMeans::fit_chunked) (via
    /// [`ChunkedBackend`]) and `fit_distributed` (via `kmeans-cluster`'s
    /// `ClusterBackend`).
    ///
    /// Stages whose round structure is expressible in the backend
    /// primitives (k-means||, random) override this once and run on
    /// every execution mode, staying **bit-identical** to
    /// [`Initializer::init`] on the same data, seed, and executor shard
    /// size. Stages with a block-streaming but not fully round-generic
    /// formulation (k-means++, the streaming seeders) restrict
    /// themselves via [`RoundBackend::local_source`]; stages with
    /// neither inherit this default, which rejects with the
    /// mode-specific typed error ([`reject_backend`]). Weighted input is
    /// not supported on backend paths.
    fn init_backend(
        &self,
        backend: &mut dyn RoundBackend,
        k: usize,
        seed: u64,
    ) -> Result<InitResult, KMeansError> {
        let _ = (k, seed);
        Err(reject_backend(self.name(), backend.kind()))
    }

    /// Whether [`Initializer::init_backend`] has a realization on the
    /// given backend kind. Declarative twin of `init_backend`'s own
    /// rejection behavior (must agree with it) — frontends use it to
    /// fail fast with the stage's typed rejection *before* any stage
    /// touches the backend (`fit_distributed` checks both pipeline
    /// stages up front, so an unsupported refiner is reported before
    /// the seeding runs).
    fn supports_backend(&self, kind: BackendKind) -> bool {
        let _ = kind;
        false
    }

    /// Runs the seeding over a block-resident [`ChunkedSource`] — the
    /// out-of-core entry point behind
    /// [`KMeans::fit_chunked`](crate::model::KMeans::fit_chunked).
    ///
    /// Provided: routes through [`Initializer::init_backend`] on a
    /// [`ChunkedBackend`]. Implement `init_backend`, not this.
    fn init_chunked(
        &self,
        source: &dyn ChunkedSource,
        k: usize,
        seed: u64,
        exec: &Executor,
    ) -> Result<InitResult, KMeansError> {
        self.init_backend(&mut ChunkedBackend::new(source, exec), k, seed)
    }
}

/// A refinement stage: improves a set of seed centers over the dataset.
pub trait Refiner: fmt::Debug + Send + Sync {
    /// Stable lower-case name used in reports and CLI output.
    fn name(&self) -> &'static str;

    /// Runs the refinement from `centers`.
    fn refine(
        &self,
        points: &PointMatrix,
        weights: Option<&[f64]>,
        centers: &PointMatrix,
        seed: u64,
        exec: &Executor,
    ) -> Result<RefineResult, KMeansError>;

    /// Runs the refinement over any [`RoundBackend`] — the **one**
    /// backend-taking entry point behind `fit_chunked` and
    /// `fit_distributed` (see [`Initializer::init_backend`] for the
    /// contract). Overriding stages stay bit-identical to
    /// [`Refiner::refine`]; the default rejects with the mode-specific
    /// typed error.
    fn refine_backend(
        &self,
        backend: &mut dyn RoundBackend,
        centers: &PointMatrix,
        seed: u64,
    ) -> Result<RefineResult, KMeansError> {
        let _ = (centers, seed);
        Err(reject_backend(self.name(), backend.kind()))
    }

    /// Whether [`Refiner::refine_backend`] has a realization on the
    /// given backend kind — see
    /// [`Initializer::supports_backend`] for the contract.
    fn supports_backend(&self, kind: BackendKind) -> bool {
        let _ = kind;
        false
    }

    /// Runs the refinement over a block-resident [`ChunkedSource`] (one
    /// scan per Lloyd iteration, gathered batches for mini-batch).
    ///
    /// Provided: routes through [`Refiner::refine_backend`] on a
    /// [`ChunkedBackend`]. Implement `refine_backend`, not this.
    fn refine_chunked(
        &self,
        source: &dyn ChunkedSource,
        centers: &PointMatrix,
        seed: u64,
        exec: &Executor,
    ) -> Result<RefineResult, KMeansError> {
        self.refine_backend(&mut ChunkedBackend::new(source, exec), centers, seed)
    }
}

/// Typed rejection for stages without an out-of-core formulation (AFK-MC²'s
/// Markov chain and Hamerly's bound arrays want resident random access) —
/// shared so the error text stays uniform across crates.
pub fn reject_chunked(name: &str) -> KMeansError {
    KMeansError::InvalidConfig(format!("{name} does not support chunked data sources"))
}

/// Typed rejection for stages without a distributed formulation (the same
/// fail-loudly contract as [`reject_chunked`], used when a builder stage
/// has no realization on a worker-cluster backend).
pub fn reject_distributed(name: &str) -> KMeansError {
    KMeansError::InvalidConfig(format!("{name} does not support distributed execution"))
}

/// Typed rejection for a stage without a formulation on the given
/// execution mode — dispatches to that mode's established error text
/// ([`reject_chunked`] / [`reject_distributed`]), so the default
/// [`Initializer::init_backend`] / [`Refiner::refine_backend`] fail with
/// the exact message the per-mode entry points always produced.
pub fn reject_backend(name: &str, kind: BackendKind) -> KMeansError {
    match kind {
        BackendKind::InMemory => KMeansError::InvalidConfig(format!(
            "{name} has no backend-generic round driver; use the in-memory entry point"
        )),
        BackendKind::Chunked => reject_chunked(name),
        BackendKind::Distributed => reject_distributed(name),
    }
}

/// Unified outcome of any [`Refiner`].
#[derive(Clone, Debug)]
pub struct RefineResult {
    /// Final centers.
    pub centers: PointMatrix,
    /// Final assignment (consistent with `centers`).
    pub labels: Vec<u32>,
    /// Final potential; weighted `Σ wᵢ·d²ᵢ` when weights were given.
    pub cost: f64,
    /// Refinement iterations executed (0 for [`NoRefine`]).
    pub iterations: usize,
    /// Whether the refiner reached its own convergence criterion (always
    /// `true` for [`NoRefine`], always `false` for the fixed-budget
    /// [`MiniBatch`]).
    pub converged: bool,
    /// Per-iteration history where the refiner tracks one (plain Lloyd);
    /// empty otherwise.
    pub history: Vec<IterationStats>,
    /// Point-to-center distance evaluations spent, including the closing
    /// labeling pass. Exact for [`HamerlyLloyd`] (counted inside the
    /// pruned loop); analytic `n·k`-per-pass for the others. The ratio
    /// Lloyd/Hamerly at equal iterations is the pruning factor.
    pub distance_computations: u64,
    /// Point–center pairs the batch assignment kernel skipped via its
    /// exact `O(1)` lower bounds (the norm bound `(‖x‖−‖c‖)²` and the
    /// coordinate gaps, wholesale sorted-sweep stops included) — the
    /// second pruning observable, next to `distance_computations`.
    /// Measured wherever the refiner runs on the kernel ([`Lloyd`],
    /// [`MiniBatch`], [`NoRefine`] — on every backend, the distributed
    /// one included, whose workers ship their counters in the partials
    /// frames); 0 for [`HamerlyLloyd`] (its pruning is bound-based and
    /// already reflected in `distance_computations`) and the sequential
    /// weighted paths.
    pub pruned_by_norm_bound: u64,
}

/// Validates an optional weight vector against the dataset.
pub(crate) fn validate_weights(
    points: &PointMatrix,
    weights: Option<&[f64]>,
) -> Result<(), KMeansError> {
    let Some(w) = weights else { return Ok(()) };
    if w.len() != points.len() {
        return Err(KMeansError::InvalidConfig(format!(
            "{} weights for {} points",
            w.len(),
            points.len()
        )));
    }
    if w.iter().any(|x| !x.is_finite() || *x < 0.0) {
        return Err(KMeansError::InvalidConfig(
            "weights must be finite and non-negative".into(),
        ));
    }
    Ok(())
}

/// Shared epilogue for initializers: stamps duration and the (possibly
/// weighted) seed cost, exactly as the legacy `InitMethod::run` did.
/// Public so out-of-crate [`Initializer`] implementations (the streaming
/// adapters) stay on the same seed-cost convention.
pub fn finish_init(
    points: &PointMatrix,
    weights: Option<&[f64]>,
    centers: PointMatrix,
    mut stats: InitStats,
    sw: Stopwatch,
    exec: &Executor,
) -> InitResult {
    stats.duration = sw.elapsed();
    stats.seed_cost = match weights {
        None => potential(points, &centers, exec),
        Some(w) => weighted_potential(points, w, &centers),
    };
    InitResult { centers, stats }
}

/// Typed rejection for algorithms without a weighted formulation —
/// shared by every `Initializer`/`Refiner` (the streaming adapters
/// included) so the error text stays uniform.
pub fn reject_weights(name: &str, weights: Option<&[f64]>) -> Result<(), KMeansError> {
    if weights.is_some() {
        return Err(KMeansError::InvalidConfig(format!(
            "{name} does not support weighted input"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Initializers
// ---------------------------------------------------------------------------

/// Uniform seeding: `k` distinct points chosen uniformly at random (or
/// weight-proportionally, without replacement, on weighted data).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Random;

impl Initializer for Random {
    fn name(&self) -> &'static str {
        "random"
    }

    fn supports_backend(&self, _kind: BackendKind) -> bool {
        true
    }

    fn init(
        &self,
        points: &PointMatrix,
        weights: Option<&[f64]>,
        k: usize,
        seed: u64,
        exec: &Executor,
    ) -> Result<InitResult, KMeansError> {
        validate(points, k)?;
        validate_weights(points, weights)?;
        let sw = Stopwatch::start();
        let mut rng = Rng::derive(seed, &[20]);
        let centers = match weights {
            None => random_init(points, k, &mut rng)?,
            Some(w) => {
                // Weight-proportional sampling without replacement; if
                // fewer than k points carry positive weight, top up
                // uniformly from the zero-weight remainder.
                let mut sel = weighted_distinct(w, k, &mut rng);
                if sel.len() < k {
                    let taken: std::collections::BTreeSet<usize> = sel.iter().copied().collect();
                    let rest: Vec<usize> =
                        (0..points.len()).filter(|i| !taken.contains(i)).collect();
                    for j in uniform_distinct(rest.len(), k - sel.len(), &mut rng) {
                        sel.push(rest[j]);
                    }
                }
                points.select(&sel)
            }
        };
        let stats = InitStats {
            rounds: 0,
            passes: 1,
            candidates: k,
            ..InitStats::default()
        };
        Ok(finish_init(points, weights, centers, stats, sw, exec))
    }

    fn init_backend(
        &self,
        backend: &mut dyn RoundBackend,
        k: usize,
        seed: u64,
    ) -> Result<InitResult, KMeansError> {
        let sw = Stopwatch::start();
        let (centers, stats) = drive_random_init(backend, k, seed)?;
        finish_init_backend(backend, centers, stats, sw)
    }
}

/// Algorithm 1 (Arthur & Vassilvitskii 2007): sequential D²-weighted
/// seeding; the weighted form is Step 8 of Algorithm 2.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KMeansPlusPlus;

impl Initializer for KMeansPlusPlus {
    fn name(&self) -> &'static str {
        "kmeans++"
    }

    fn supports_backend(&self, kind: BackendKind) -> bool {
        kind == BackendKind::Chunked
    }

    fn init(
        &self,
        points: &PointMatrix,
        weights: Option<&[f64]>,
        k: usize,
        seed: u64,
        exec: &Executor,
    ) -> Result<InitResult, KMeansError> {
        validate(points, k)?;
        validate_weights(points, weights)?;
        let sw = Stopwatch::start();
        let mut rng = Rng::derive(seed, &[21]);
        let centers = match weights {
            None => kmeanspp(points, k, &mut rng, exec)?,
            Some(w) => weighted_kmeanspp(points, w, k, &mut rng)?,
        };
        let stats = InitStats {
            rounds: k.saturating_sub(1),
            passes: k,
            candidates: k,
            ..InitStats::default()
        };
        Ok(finish_init(points, weights, centers, stats, sw, exec))
    }

    fn init_backend(
        &self,
        backend: &mut dyn RoundBackend,
        k: usize,
        seed: u64,
    ) -> Result<InitResult, KMeansError> {
        // Algorithm 1 draws each center from a global sequential D²
        // distribution — k dependent rounds over the resident d² array.
        // That streams fine block by block, but has no per-round
        // decomposition a remote backend could serve cheaply (the
        // paper's point), so it runs on local sources only.
        let Some((source, exec)) = backend.local_source() else {
            return Err(reject_backend(self.name(), backend.kind()));
        };
        let sw = Stopwatch::start();
        let mut rng = Rng::derive(seed, &[21]);
        let centers = kmeanspp_chunked(source, k, &mut rng, exec)?;
        let stats = InitStats {
            rounds: k.saturating_sub(1),
            passes: k,
            candidates: k,
            ..InitStats::default()
        };
        finish_init_backend(backend, centers, stats, sw)
    }
}

/// Algorithm 2 — **k-means||**: parallel oversampling + reclustering.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KMeansParallel(pub KMeansParallelConfig);

impl Initializer for KMeansParallel {
    fn name(&self) -> &'static str {
        "kmeans-par"
    }

    fn supports_backend(&self, _kind: BackendKind) -> bool {
        true
    }

    fn init(
        &self,
        points: &PointMatrix,
        weights: Option<&[f64]>,
        k: usize,
        seed: u64,
        exec: &Executor,
    ) -> Result<InitResult, KMeansError> {
        validate(points, k)?;
        reject_weights("k-means||", weights)?;
        let sw = Stopwatch::start();
        let (centers, stats) = kmeans_parallel(points, k, &self.0, seed, exec)?;
        Ok(finish_init(points, weights, centers, stats, sw, exec))
    }

    fn init_backend(
        &self,
        backend: &mut dyn RoundBackend,
        k: usize,
        seed: u64,
    ) -> Result<InitResult, KMeansError> {
        let sw = Stopwatch::start();
        let (centers, stats) = drive_kmeans_parallel(backend, k, &self.0, seed)?;
        finish_init_backend(backend, centers, stats, sw)
    }
}

/// AFK-MC² seeding (Bachem et al., NIPS 2016): Markov-chain approximation
/// of the D² distribution after a single preprocessing pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AfkMc2 {
    /// Markov-chain length `m` per drawn center (authors recommend the
    /// low hundreds).
    pub chain_length: usize,
}

impl Default for AfkMc2 {
    fn default() -> Self {
        AfkMc2 { chain_length: 200 }
    }
}

impl Initializer for AfkMc2 {
    fn name(&self) -> &'static str {
        "afk-mc2"
    }

    fn init(
        &self,
        points: &PointMatrix,
        weights: Option<&[f64]>,
        k: usize,
        seed: u64,
        exec: &Executor,
    ) -> Result<InitResult, KMeansError> {
        validate(points, k)?;
        reject_weights("afk-mc2", weights)?;
        let sw = Stopwatch::start();
        let mut rng = Rng::derive(seed, &[22]);
        let centers = afk_mc2(points, k, self.chain_length, &mut rng, exec)?;
        let stats = InitStats {
            rounds: k.saturating_sub(1),
            passes: 1, // one proposal pass; the chain never rescans the data
            candidates: k,
            ..InitStats::default()
        };
        Ok(finish_init(points, weights, centers, stats, sw, exec))
    }
}

// ---------------------------------------------------------------------------
// Refiners
// ---------------------------------------------------------------------------

/// Lloyd's iteration (§3.1), the paper's refinement stage. Honors
/// per-point weights via the weighted centroid update.
///
/// Empty-cluster semantics differ by branch, inherited from the
/// pre-pipeline entry points (parity with which is a test contract):
/// the unweighted branch reseeds an emptied cluster onto the farthest
/// point, while the weighted branch — like
/// [`weighted_lloyd`](crate::lloyd::weighted_lloyd), which it reproduces
/// bit-for-bit — keeps the previous center in place.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Lloyd(pub LloydConfig);

impl Refiner for Lloyd {
    fn name(&self) -> &'static str {
        "lloyd"
    }

    fn supports_backend(&self, _kind: BackendKind) -> bool {
        true
    }

    fn refine(
        &self,
        points: &PointMatrix,
        weights: Option<&[f64]>,
        centers: &PointMatrix,
        _seed: u64,
        exec: &Executor,
    ) -> Result<RefineResult, KMeansError> {
        validate_weights(points, weights)?;
        let n = points.len() as u64;
        let k = centers.len() as u64;
        match weights {
            None => {
                let r = lloyd(points, centers, &self.0, exec)?;
                // assign_and_sum spends n·k per assignment pass; lloyd()
                // counts the closing relabel pass itself.
                Ok(RefineResult {
                    distance_computations: n * k * r.assign_passes as u64,
                    pruned_by_norm_bound: r.pruned_by_norm_bound,
                    centers: r.centers,
                    labels: r.labels,
                    cost: r.cost,
                    iterations: r.iterations,
                    converged: r.converged,
                    history: r.history,
                })
            }
            Some(w) => {
                self.0.validate()?;
                validate_refine_inputs(points, centers)?;
                let trace = weighted_lloyd_traced(
                    points,
                    w,
                    centers.clone(),
                    self.0.max_iterations,
                    self.0.tol,
                );
                // On a stable exit the trace's last pass already produced
                // (labels, cost) for the final centers; otherwise one
                // closing relabel pass is needed (and counted).
                let (labels, cost, closing) = match trace.stable {
                    Some((labels, cost)) => (labels, cost, 0),
                    None => {
                        let (labels, _sums, _wsum, cost) =
                            assign_weighted(points, w, &trace.centers);
                        (labels, cost, 1)
                    }
                };
                Ok(RefineResult {
                    centers: trace.centers,
                    labels,
                    cost,
                    // Match unweighted lloyd()'s convention (history.len()):
                    // every in-loop assignment pass counts as an iteration,
                    // the stability-detecting no-op pass included.
                    iterations: trace.assign_passes,
                    converged: trace.converged,
                    history: Vec::new(),
                    distance_computations: n * k * (trace.assign_passes as u64 + closing),
                    // The weighted kernels are sequential scalar code on
                    // candidate-set-sized data; no norm pruning there.
                    pruned_by_norm_bound: 0,
                })
            }
        }
    }

    fn refine_backend(
        &self,
        backend: &mut dyn RoundBackend,
        centers: &PointMatrix,
        _seed: u64,
    ) -> Result<RefineResult, KMeansError> {
        let n = backend.len() as u64;
        let k = centers.len() as u64;
        let r = drive_lloyd(backend, centers, &self.0)?;
        Ok(RefineResult {
            distance_computations: n * k * r.assign_passes as u64,
            pruned_by_norm_bound: r.pruned_by_norm_bound,
            centers: r.centers,
            labels: r.labels,
            cost: r.cost,
            iterations: r.iterations,
            converged: r.converged,
            history: r.history,
        })
    }
}

/// Hamerly's bounds-accelerated Lloyd — exact results, far fewer distance
/// evaluations; the count in [`RefineResult::distance_computations`] is
/// measured, not analytic. Stops on assignment stability only: a nonzero
/// `tol` in the config is rejected (see [`hamerly_lloyd`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HamerlyLloyd(pub LloydConfig);

impl Refiner for HamerlyLloyd {
    fn name(&self) -> &'static str {
        "hamerly"
    }

    fn refine(
        &self,
        points: &PointMatrix,
        weights: Option<&[f64]>,
        centers: &PointMatrix,
        _seed: u64,
        exec: &Executor,
    ) -> Result<RefineResult, KMeansError> {
        reject_weights("hamerly", weights)?;
        let r = hamerly_lloyd(points, centers, &self.0, exec)?;
        Ok(RefineResult {
            // The closing exact pass inside hamerly_lloyd is not part of
            // its own counter; add it so refiners are comparable.
            distance_computations: r.distance_computations
                + points.len() as u64 * centers.len() as u64,
            pruned_by_norm_bound: 0, // Hamerly prunes via bounds, counted above
            centers: r.centers,
            labels: r.labels,
            cost: r.cost,
            iterations: r.iterations,
            converged: r.converged,
            history: Vec::new(),
        })
    }
}

/// Sculley's mini-batch k-means (WWW 2010; the paper's reference \[31]) —
/// a fixed budget of small-batch gradient steps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MiniBatch(pub MiniBatchConfig);

impl Refiner for MiniBatch {
    fn name(&self) -> &'static str {
        "minibatch"
    }

    fn supports_backend(&self, _kind: BackendKind) -> bool {
        true
    }

    fn refine(
        &self,
        points: &PointMatrix,
        weights: Option<&[f64]>,
        centers: &PointMatrix,
        seed: u64,
        exec: &Executor,
    ) -> Result<RefineResult, KMeansError> {
        reject_weights("minibatch", weights)?;
        let k = centers.len() as u64;
        let (refined, batch_stats) = minibatch_kmeans_traced(points, centers, &self.0, seed)?;
        let (labels, sums) = assign_and_sum(points, &refined, exec);
        Ok(RefineResult {
            centers: refined,
            labels,
            cost: sums.cost,
            iterations: self.0.iterations,
            converged: false, // fixed budget; no convergence test
            history: Vec::new(),
            distance_computations: (self.0.batch_size * self.0.iterations) as u64 * k
                + points.len() as u64 * k,
            pruned_by_norm_bound: batch_stats.pruned_by_norm_bound
                + sums.stats.pruned_by_norm_bound,
        })
    }

    fn refine_backend(
        &self,
        backend: &mut dyn RoundBackend,
        centers: &PointMatrix,
        seed: u64,
    ) -> Result<RefineResult, KMeansError> {
        let n = backend.len() as u64;
        let k = centers.len() as u64;
        let (refined, batch_stats) = drive_minibatch(backend, centers, &self.0, seed)?;
        let (labels, sums) = drive_label_pass(backend, &refined)?;
        Ok(RefineResult {
            centers: refined,
            labels,
            cost: sums.cost,
            iterations: self.0.iterations,
            converged: false, // fixed budget; no convergence test
            history: Vec::new(),
            distance_computations: (self.0.batch_size * self.0.iterations) as u64 * k + n * k,
            pruned_by_norm_bound: batch_stats.pruned_by_norm_bound
                + sums.stats.pruned_by_norm_bound,
        })
    }
}

/// The identity refiner: keeps the seed centers and only labels the data —
/// the refiner behind seed-cost studies (Tables 1–2 "seed" columns).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoRefine;

impl Refiner for NoRefine {
    fn name(&self) -> &'static str {
        "none"
    }

    fn supports_backend(&self, _kind: BackendKind) -> bool {
        true
    }

    fn refine(
        &self,
        points: &PointMatrix,
        weights: Option<&[f64]>,
        centers: &PointMatrix,
        _seed: u64,
        exec: &Executor,
    ) -> Result<RefineResult, KMeansError> {
        validate_weights(points, weights)?;
        validate_refine_inputs(points, centers)?;
        let (labels, cost, pruned) = match weights {
            None => {
                let (labels, sums) = assign_and_sum(points, centers, exec);
                (labels, sums.cost, sums.stats.pruned_by_norm_bound)
            }
            Some(w) => {
                let (labels, _sums, _wsum, cost) = assign_weighted(points, w, centers);
                (labels, cost, 0)
            }
        };
        Ok(RefineResult {
            centers: centers.clone(),
            labels,
            cost,
            iterations: 0,
            converged: true,
            history: Vec::new(),
            distance_computations: points.len() as u64 * centers.len() as u64,
            pruned_by_norm_bound: pruned,
        })
    }

    fn refine_backend(
        &self,
        backend: &mut dyn RoundBackend,
        centers: &PointMatrix,
        _seed: u64,
    ) -> Result<RefineResult, KMeansError> {
        let n = backend.len() as u64;
        let (labels, sums) = drive_label_pass(backend, centers)?;
        Ok(RefineResult {
            centers: centers.clone(),
            labels,
            cost: sums.cost,
            iterations: 0,
            converged: true,
            history: Vec::new(),
            distance_computations: n * centers.len() as u64,
            pruned_by_norm_bound: sums.stats.pruned_by_norm_bound,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmeans_par::Parallelism;

    fn blobs() -> PointMatrix {
        let mut m = PointMatrix::new(2);
        for (cx, cy) in [(0.0, 0.0), (30.0, 0.0), (0.0, 30.0)] {
            for i in 0..40 {
                m.push(&[cx + (i % 8) as f64 * 0.1, cy + (i / 8) as f64 * 0.1])
                    .unwrap();
            }
        }
        m
    }

    fn initializers() -> Vec<Box<dyn Initializer>> {
        vec![
            Box::new(Random),
            Box::new(KMeansPlusPlus),
            Box::new(KMeansParallel::default()),
            Box::new(AfkMc2 { chain_length: 20 }),
        ]
    }

    fn refiners() -> Vec<Box<dyn Refiner>> {
        vec![
            Box::new(Lloyd::default()),
            Box::new(HamerlyLloyd::default()),
            Box::new(MiniBatch(MiniBatchConfig {
                batch_size: 32,
                iterations: 40,
            })),
            Box::new(NoRefine),
        ]
    }

    #[test]
    fn every_initializer_returns_k_centers_with_stats() {
        let points = blobs();
        let exec = Executor::sequential();
        for init in initializers() {
            let r = init.init(&points, None, 3, 7, &exec).unwrap();
            assert_eq!(r.centers.len(), 3, "{init:?}");
            assert!(r.stats.seed_cost >= 0.0);
            assert!(r.stats.passes >= 1, "{init:?}");
        }
    }

    #[test]
    fn every_refiner_is_cost_consistent() {
        let points = blobs();
        let exec = Executor::sequential();
        let seed = KMeansPlusPlus.init(&points, None, 3, 1, &exec).unwrap();
        for refiner in refiners() {
            let r = refiner
                .refine(&points, None, &seed.centers, 1, &exec)
                .unwrap();
            assert_eq!(r.centers.len(), 3, "{refiner:?}");
            assert_eq!(r.labels.len(), points.len());
            assert!(r.cost.is_finite() && r.cost >= 0.0);
            assert!(r.distance_computations > 0, "{refiner:?}");
            // Reported cost matches an exact recomputation.
            let direct = potential(&points, &r.centers, &exec);
            assert!(
                (r.cost - direct).abs() <= 1e-9 * (1.0 + direct),
                "{refiner:?}: {} vs {}",
                r.cost,
                direct
            );
        }
    }

    #[test]
    fn no_refine_keeps_seed_centers_and_cost() {
        let points = blobs();
        let exec = Executor::sequential();
        let seed = Random.init(&points, None, 3, 5, &exec).unwrap();
        let r = NoRefine
            .refine(&points, None, &seed.centers, 5, &exec)
            .unwrap();
        assert_eq!(r.centers, seed.centers);
        assert_eq!(r.iterations, 0);
        assert!(r.converged);
        assert!((r.cost - seed.stats.seed_cost).abs() <= 1e-9 * (1.0 + r.cost));
    }

    #[test]
    fn hamerly_prunes_relative_to_lloyd() {
        let points = blobs();
        let exec = Executor::sequential();
        let seed = Random.init(&points, None, 3, 2, &exec).unwrap();
        let plain = Lloyd::default()
            .refine(&points, None, &seed.centers, 2, &exec)
            .unwrap();
        let fast = HamerlyLloyd::default()
            .refine(&points, None, &seed.centers, 2, &exec)
            .unwrap();
        assert_eq!(plain.labels, fast.labels);
        assert!(fast.distance_computations < plain.distance_computations);
    }

    #[test]
    fn weighted_support_matrix_is_honest() {
        let points = blobs();
        let w = vec![1.0; points.len()];
        let exec = Executor::sequential();
        // Supported paths succeed.
        assert!(Random.init(&points, Some(&w), 3, 1, &exec).is_ok());
        assert!(KMeansPlusPlus.init(&points, Some(&w), 3, 1, &exec).is_ok());
        let seed = KMeansPlusPlus.init(&points, Some(&w), 3, 1, &exec).unwrap();
        assert!(Lloyd::default()
            .refine(&points, Some(&w), &seed.centers, 1, &exec)
            .is_ok());
        assert!(NoRefine
            .refine(&points, Some(&w), &seed.centers, 1, &exec)
            .is_ok());
        // Unsupported paths reject with a typed error.
        for result in [
            KMeansParallel::default()
                .init(&points, Some(&w), 3, 1, &exec)
                .err(),
            AfkMc2::default().init(&points, Some(&w), 3, 1, &exec).err(),
            HamerlyLloyd::default()
                .refine(&points, Some(&w), &seed.centers, 1, &exec)
                .err(),
            MiniBatch::default()
                .refine(&points, Some(&w), &seed.centers, 1, &exec)
                .err(),
        ] {
            assert!(matches!(result, Some(KMeansError::InvalidConfig(_))));
        }
    }

    #[test]
    fn uniform_weights_match_unweighted_potential() {
        // Weighted fit with all-ones weights must report the same cost
        // scale as the unweighted potential.
        let points = blobs();
        let w = vec![1.0; points.len()];
        let exec = Executor::sequential();
        let seed = KMeansPlusPlus.init(&points, Some(&w), 3, 3, &exec).unwrap();
        let direct = potential(&points, &seed.centers, &exec);
        assert!((seed.stats.seed_cost - direct).abs() <= 1e-9 * (1.0 + direct));
    }

    #[test]
    fn weighted_random_top_up_covers_zero_weight_data() {
        // Only 2 positive-weight points but k = 4: top-up must fill in.
        let points = PointMatrix::from_flat((0..12).map(|i| i as f64).collect(), 1).unwrap();
        let mut w = vec![0.0; 12];
        w[3] = 1.0;
        w[8] = 2.0;
        let exec = Executor::sequential();
        let r = Random.init(&points, Some(&w), 4, 9, &exec).unwrap();
        assert_eq!(r.centers.len(), 4);
        // The two positive-weight points are always selected.
        for v in [3.0, 8.0] {
            assert!(r.centers.rows().any(|row| row[0] == v), "missing {v}");
        }
    }

    #[test]
    fn weighted_lloyd_validates_config_like_unweighted() {
        let points = blobs();
        let w = vec![1.0; points.len()];
        let exec = Executor::sequential();
        let seed = KMeansPlusPlus.init(&points, None, 3, 1, &exec).unwrap();
        let bad = Lloyd(LloydConfig {
            max_iterations: 0,
            tol: 0.0,
        });
        for weights in [None, Some(w.as_slice())] {
            assert!(
                matches!(
                    bad.refine(&points, weights, &seed.centers, 1, &exec),
                    Err(KMeansError::InvalidConfig(_))
                ),
                "weights: {weights:?}"
            );
        }
        let bad_tol = Lloyd(LloydConfig {
            max_iterations: 10,
            tol: -1.0,
        });
        assert!(bad_tol
            .refine(&points, Some(&w), &seed.centers, 1, &exec)
            .is_err());
        // Hamerly has no tolerance-based stop: a nonzero (or invalid) tol
        // is rejected rather than silently ignored.
        for tol in [0.1, -1.0] {
            let r = HamerlyLloyd(LloydConfig {
                max_iterations: 10,
                tol,
            })
            .refine(&points, None, &seed.centers, 1, &exec);
            assert!(
                matches!(r, Err(KMeansError::InvalidConfig(_))),
                "tol {tol}: {r:?}"
            );
        }
    }

    #[test]
    fn tol_stop_reports_final_center_cost_through_refiner() {
        // Regression: the refiner's reported cost must match an exact
        // recomputation on the returned centers even when `tol` (not
        // assignment stability) ends the run.
        let points = blobs();
        let exec = Executor::sequential();
        let seed = Random.init(&points, None, 3, 2, &exec).unwrap();
        let eager = Lloyd(LloydConfig {
            max_iterations: 100,
            tol: 1.0,
        });
        let w = vec![1.0; points.len()];
        for weights in [None, Some(w.as_slice())] {
            let r = eager
                .refine(&points, weights, &seed.centers, 2, &exec)
                .unwrap();
            assert!(r.converged, "weights: {weights:?}");
            let direct = potential(&points, &r.centers, &exec);
            assert!(
                (r.cost - direct).abs() <= 1e-9 * (1.0 + direct),
                "weights {weights:?}: reported {} vs recomputed {}",
                r.cost,
                direct
            );
        }
    }

    #[test]
    fn bad_weights_are_rejected_everywhere() {
        let points = blobs();
        let exec = Executor::sequential();
        let short = vec![1.0; 3];
        let negative = vec![-1.0; points.len()];
        for w in [&short, &negative] {
            assert!(Random.init(&points, Some(w), 3, 0, &exec).is_err());
            assert!(KMeansPlusPlus.init(&points, Some(w), 3, 0, &exec).is_err());
        }
    }

    #[test]
    fn refiners_are_thread_count_invariant() {
        let points = blobs();
        let seed = KMeansPlusPlus
            .init(&points, None, 3, 4, &Executor::sequential())
            .unwrap();
        for refiner in refiners() {
            let run = |par: Parallelism| {
                let exec = Executor::new(par).with_shard_size(32);
                refiner
                    .refine(&points, None, &seed.centers, 4, &exec)
                    .unwrap()
            };
            let a = run(Parallelism::Sequential);
            let b = run(Parallelism::Threads(3));
            assert_eq!(a.labels, b.labels, "{refiner:?}");
            assert_eq!(a.centers, b.centers, "{refiner:?}");
            assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "{refiner:?}");
        }
    }
}
