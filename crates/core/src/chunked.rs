//! Out-of-core kernels: the per-pass building blocks that let the
//! backend-generic drivers in [`crate::driver`] run every algorithm of
//! this crate over a [`ChunkedSource`] instead of a resident
//! [`PointMatrix`].
//!
//! The algorithm round loops themselves live in [`crate::driver`]
//! (`drive_kmeans_parallel`, `drive_lloyd`, `drive_minibatch`) — this
//! module provides the primitives their
//! [`ChunkedBackend`](crate::driver::ChunkedBackend) is built from, and
//! the same primitives are what distributed workers run on their local
//! shards.
//!
//! This is the "data does not fit in main memory" premise of the paper's
//! §1 made executable: each k-means|| round (Algorithm 2), each Lloyd
//! iteration (§3.1), and each assignment pass is **one scan** over the
//! blocks of the source, with per-block parallelism on the existing shard
//! [`Executor`]. Only `O(n)` *scalar* working state (the `d²` array, the
//! nearest-center ids, the labels) stays resident — never the `O(n·d)`
//! feature payload, which is the part that outgrows RAM at the paper's
//! scales (KDDCup1999: 4.8 M × 42 doubles).
//!
//! **Bit-parity contract.** Every kernel here produces results
//! bit-identical to its in-memory counterpart on the same data, seed, and
//! executor — for *any* block size (`tests/chunked_parity.rs`). Two
//! mechanisms make that hold:
//!
//! 1. Per-point arithmetic (distances, bound-pruned scans, centroid
//!    contributions) is order-independent across points, so blocks can be
//!    visited in any grouping.
//! 2. Everything order-*sensitive* — the per-shard sampling RNG streams of
//!    Algorithm 2 and the shard-ordered floating-point folds — either
//!    operates on resident scalar state (and literally shares the
//!    in-memory code), or is reproduced by an internal shard-ordered
//!    folder and [`assign_and_sum_chunked`], which re-create the
//!    executor's exact shard boundaries across block edges.

use crate::assign::{sum_shard_size, ClusterSums};
use crate::error::KMeansError;
use crate::kernel::{AssignKernel, KernelStats};
use kmeans_data::{ChunkedSource, DataError, PointMatrix};
use kmeans_par::Executor;

/// Converts a data-layer block failure into the typed clustering error.
pub(crate) fn source_err(e: DataError) -> KMeansError {
    KMeansError::Data(e.to_string())
}

/// Shape validation shared by every chunked initializer (the chunked
/// analogue of [`crate::init::validate`]; finiteness is checked during the
/// first streaming pass via [`check_block_finite`] instead of an upfront
/// scan, so it still costs no extra pass).
pub fn validate_source(source: &dyn ChunkedSource, k: usize) -> Result<(), KMeansError> {
    if source.is_empty() {
        return Err(KMeansError::EmptyInput);
    }
    if k == 0 || k > source.len() {
        return Err(KMeansError::InvalidK { k, n: source.len() });
    }
    Ok(())
}

/// Rejects NaN/∞ coordinates in one block, reporting the *global* point
/// index (`row_offset` is the block's first global row). Chunked
/// initializers call this on their first full pass — the same contract as
/// [`crate::init::validate`], paid as part of a scan that happens anyway.
pub fn check_block_finite(block: &PointMatrix, row_offset: usize) -> Result<(), KMeansError> {
    if let Some(flat) = block.as_slice().iter().position(|v| !v.is_finite()) {
        return Err(KMeansError::NonFiniteData {
            point: row_offset + flat / block.dim(),
            dim: flat % block.dim(),
        });
    }
    Ok(())
}

/// Drives one full pass: reads every block in order into `buf` and hands
/// `(block_index, first_global_row, block)` to `f`. Public so out-of-crate
/// chunked stages (the streaming seeders) share the same pass loop and
/// error mapping.
pub fn for_each_block<F>(
    source: &dyn ChunkedSource,
    buf: &mut PointMatrix,
    mut f: F,
) -> Result<(), KMeansError>
where
    F: FnMut(usize, usize, &PointMatrix) -> Result<(), KMeansError>,
{
    for b in 0..source.num_blocks() {
        source.read_block(b, buf).map_err(source_err)?;
        f(b, b * source.block_rows(), buf)?;
    }
    Ok(())
}

/// Reproduces `Executor::map_reduce`'s shard-ordered left fold for a
/// row-ordered value stream that arrives block by block: values are summed
/// sequentially within each executor shard and the per-shard sums are
/// folded left-to-right, bit-identically to the in-memory pass — shard
/// boundaries need not align with block boundaries.
///
/// Public because distributed workers use the same splitter to produce
/// per-shard partial sums ([`ShardSum::into_sums`]) that the coordinator
/// folds globally; [`ShardSum::finish`] is that fold done locally.
pub struct ShardSum {
    shard_size: usize,
    boundary: usize,
    next: usize,
    acc: f64,
    sums: Vec<f64>,
}

impl ShardSum {
    /// Starts a splitter with the executor's shard size.
    pub fn new(shard_size: usize) -> Self {
        ShardSum {
            shard_size,
            boundary: shard_size,
            next: 0,
            acc: 0.0,
            sums: Vec::new(),
        }
    }

    fn flush(&mut self) {
        self.sums.push(self.acc);
        self.acc = 0.0;
        self.boundary += self.shard_size;
    }

    /// Feeds the next value of the row-ordered stream.
    pub fn push(&mut self, value: f64) {
        if self.next == self.boundary {
            self.flush();
        }
        self.acc += value;
        self.next += 1;
    }

    /// One partial sum per executor shard, in shard order.
    pub fn into_sums(mut self) -> Vec<f64> {
        if self.next > self.boundary - self.shard_size {
            self.flush();
        }
        self.sums
    }

    /// The shard-ordered left fold of the per-shard sums — bit-identical
    /// to `Executor::map_reduce` with `+` on the same stream.
    pub fn finish(self) -> f64 {
        self.into_sums()
            .into_iter()
            .reduce(|a, b| a + b)
            .unwrap_or(0.0)
    }
}

/// One-scan potential `φ_X(C)` over a chunked source — bit-identical to
/// [`crate::cost::potential`] on the same data and executor. Also enforces
/// the finiteness contract (this is the pass chunked seeders without a
/// cost tracker rely on for input validation).
pub fn potential_chunked(
    source: &dyn ChunkedSource,
    centers: &PointMatrix,
    exec: &Executor,
) -> Result<f64, KMeansError> {
    let sums = potential_shard_sums(source, centers, exec)?;
    Ok(sums.into_iter().reduce(|a, b| a + b).unwrap_or(0.0))
}

/// The per-executor-shard partial sums behind [`potential_chunked`]: one
/// sequential `Σ d²` per shard of the executor grid, in shard order, with
/// the same finiteness enforcement. The shard-ordered left fold of the
/// returned values *is* `potential_chunked` (and thus
/// [`crate::cost::potential`]) bit for bit.
///
/// Distributed workers call this on their local row range and ship the
/// partials; the coordinator concatenates them in worker order (= global
/// shard order, given shard-aligned worker boundaries) and performs the
/// fold, which is what keeps the distributed potential bit-identical to
/// the single-node one.
pub fn potential_shard_sums(
    source: &dyn ChunkedSource,
    centers: &PointMatrix,
    exec: &Executor,
) -> Result<Vec<f64>, KMeansError> {
    if centers.is_empty() {
        return Err(KMeansError::InvalidK {
            k: 0,
            n: source.len(),
        });
    }
    if source.dim() != centers.dim() {
        return Err(KMeansError::DimensionMismatch {
            expected: source.dim(),
            got: centers.dim(),
        });
    }
    let mut buf = source.block_buffer();
    let mut d2 = vec![0.0f64; source.block_rows()];
    let mut labels = vec![0u32; source.block_rows()];
    let mut folder = ShardSum::new(exec.shard_spec().shard_size());
    let kernel = AssignKernel::new(centers);
    for_each_block(source, &mut buf, |_b, start, block| {
        check_block_finite(block, start)?;
        let end = block.len();
        // One reused label scratch per pass (shard-aligned chunks of it),
        // not one allocation per shard per block.
        exec.update_shards2(&mut labels[..end], &mut d2[..end], |_, local, cl, cd| {
            kernel.assign(block, local..local + cl.len(), cl, cd);
        });
        for &v in d2[..end].iter() {
            folder.push(v);
        }
        Ok(())
    })?;
    Ok(folder.into_sums())
}

/// [`crate::cost::CostTracker`] for chunked sources: maintains the
/// per-point `d²` and nearest-candidate-id arrays (resident `O(n)` scalar
/// state) across center additions, re-reading the feature blocks on each
/// update pass. Values and the cached potential are bit-identical to the
/// in-memory tracker's.
pub struct ChunkedCostTracker {
    d2: Vec<f64>,
    nearest_id: Vec<u32>,
    total: f64,
}

impl ChunkedCostTracker {
    /// Builds the tracker for an initial non-empty center set — one full
    /// scan, which doubles as the finiteness validation pass.
    pub fn new(
        source: &dyn ChunkedSource,
        centers: &PointMatrix,
        exec: &Executor,
    ) -> Result<Self, KMeansError> {
        assert!(!centers.is_empty(), "ChunkedCostTracker: no centers");
        assert_eq!(
            source.dim(),
            centers.dim(),
            "ChunkedCostTracker: dim mismatch"
        );
        let n = source.len();
        let mut d2 = vec![0.0f64; n];
        let mut nearest_id = vec![0u32; n];
        let mut buf = source.block_buffer();
        let kernel = AssignKernel::new(centers);
        for_each_block(source, &mut buf, |_b, start, block| {
            check_block_finite(block, start)?;
            let end = start + block.len();
            exec.update_shards2(
                &mut d2[start..end],
                &mut nearest_id[start..end],
                |_, local, cd, cn| {
                    kernel.assign(block, local..local + cd.len(), cn, cd);
                },
            );
            Ok(())
        })?;
        let mut tracker = ChunkedCostTracker {
            d2,
            nearest_id,
            total: 0.0,
        };
        tracker.resum(exec);
        Ok(tracker)
    }

    /// Incorporates centers `centers[from..]` in one scan, scanning only
    /// the new suffix per point with partial-distance pruning (the exact
    /// arithmetic of the in-memory tracker).
    pub fn update(
        &mut self,
        source: &dyn ChunkedSource,
        centers: &PointMatrix,
        from: usize,
        exec: &Executor,
    ) -> Result<(), KMeansError> {
        assert_eq!(
            source.dim(),
            centers.dim(),
            "ChunkedCostTracker::update: dim mismatch"
        );
        if from >= centers.len() {
            return Ok(());
        }
        let mut buf = source.block_buffer();
        let d2 = &mut self.d2;
        let nearest_id = &mut self.nearest_id;
        // Suffix scan pruned by the carried best — the exact arithmetic of
        // the in-memory tracker, via the same kernel.
        let kernel = AssignKernel::suffix(centers, from);
        for_each_block(source, &mut buf, |_b, start, block| {
            let end = start + block.len();
            exec.update_shards2(
                &mut d2[start..end],
                &mut nearest_id[start..end],
                |_, local, cd, cn| {
                    kernel.update(block, local..local + cd.len(), cn, cd);
                },
            );
            Ok(())
        })?;
        self.resum(exec);
        Ok(())
    }

    /// Recomputes the cached potential — the `d²` array is resident, so
    /// this is literally the in-memory tracker's shard-ordered fold.
    fn resum(&mut self, exec: &Executor) {
        let d2 = &self.d2;
        self.total = exec
            .map_reduce(
                d2.len(),
                |_, range| range.map(|i| d2[i]).sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap_or(0.0);
    }

    /// The current potential `φ_X(C)`.
    pub fn potential(&self) -> f64 {
        self.total
    }

    /// Per-point squared distances to the nearest candidate.
    pub fn d2(&self) -> &[f64] {
        &self.d2
    }

    /// Step 7 of Algorithm 2: candidate weights as an `O(n)` histogram
    /// over the tracked nearest ids — no feature pass.
    pub fn weights(&self, m: usize) -> Vec<f64> {
        let mut w = vec![0.0f64; m];
        for &id in &self.nearest_id {
            w[id as usize] += 1.0;
        }
        w
    }
}

/// Fetches the rows at `indices` (any order, duplicates allowed) from a
/// chunked source, preserving the given order in the result. Needed blocks
/// are read once each, in ascending order — a budgeted source's cache
/// absorbs repeats. Public so distributed workers serve row-gather
/// requests through the same code path as the chunked seeders.
pub fn gather_rows(
    source: &dyn ChunkedSource,
    indices: &[usize],
    buf: &mut PointMatrix,
) -> Result<PointMatrix, KMeansError> {
    let mut out = PointMatrix::with_capacity(source.dim(), indices.len());
    gather_rows_into(source, indices, buf, &mut out)?;
    Ok(out)
}

/// [`gather_rows`] into a caller-provided matrix (cleared first, must
/// match the source's dimensionality) — allocation-free in steady state
/// when `out` is reused across calls, which is what keeps repeated
/// mini-batch gathers off the allocator.
pub fn gather_rows_into(
    source: &dyn ChunkedSource,
    indices: &[usize],
    buf: &mut PointMatrix,
    out: &mut PointMatrix,
) -> Result<(), KMeansError> {
    let dim = source.dim();
    if out.dim() != dim {
        return Err(KMeansError::DimensionMismatch {
            expected: dim,
            got: out.dim(),
        });
    }
    // Pre-size with zero rows (reusing the buffer's capacity) so the
    // block-ordered reads below can fill the request-ordered slots.
    out.clear();
    let zero = vec![0.0f64; dim];
    for _ in 0..indices.len() {
        out.push(&zero).expect("dim checked above");
    }
    let mut order: Vec<(usize, usize)> = indices.iter().copied().zip(0..).collect();
    order.sort_unstable();
    let block_rows = source.block_rows();
    let mut i = 0;
    while i < order.len() {
        let block = order[i].0 / block_rows;
        source.read_block(block, buf).map_err(source_err)?;
        let start = block * block_rows;
        while i < order.len() && order[i].0 / block_rows == block {
            let (idx, slot) = order[i];
            out.row_mut(slot).copy_from_slice(buf.row(idx - start));
            i += 1;
        }
    }
    Ok(())
}

/// Chunked analogue of [`crate::lloyd::validate_refine_inputs`].
pub(crate) fn validate_refine_inputs_chunked(
    source: &dyn ChunkedSource,
    centers: &PointMatrix,
) -> Result<(), KMeansError> {
    if source.is_empty() {
        return Err(KMeansError::EmptyInput);
    }
    if centers.is_empty() || centers.len() > source.len() {
        return Err(KMeansError::InvalidK {
            k: centers.len(),
            n: source.len(),
        });
    }
    if source.dim() != centers.dim() {
        return Err(KMeansError::DimensionMismatch {
            expected: source.dim(),
            got: centers.dim(),
        });
    }
    Ok(())
}

/// One-scan assignment + per-cluster accumulation over a chunked source —
/// bit-identical to [`crate::assign::assign_and_sum`] (labels, sums,
/// counts, cost, farthest-point records) on the same data and executor.
///
/// The in-memory pass folds one partial per *accumulation shard* (a
/// fixed-count layout — see [`crate::assign::MAX_SUM_SHARDS`]) in shard
/// order. Accumulation shards are usually much larger than blocks, so this
/// pass carries the open partial across block boundaries and flushes it
/// exactly where the in-memory layout would. Per-row distance evaluation
/// is still block-parallel on `exec`; only the cheap `O(d)` accumulation
/// per row is sequential.
pub fn assign_and_sum_chunked(
    source: &dyn ChunkedSource,
    centers: &PointMatrix,
    exec: &Executor,
) -> Result<(Vec<u32>, ClusterSums), KMeansError> {
    // assign_partials_chunked with offset 0 / global_n = len performs
    // exactly the validate_refine_inputs_chunked checks.
    let (labels, partials, stats) =
        assign_partials_chunked(source, centers, exec, 0, source.len())?;
    let mut sums = fold_accum_shards(centers.len(), source.dim(), &partials);
    sums.stats = stats;
    Ok((labels, sums))
}

/// One accumulation shard's partial from an assignment pass: per-cluster
/// coordinate sums and counts, the shard's cost contribution, and its
/// farthest point (`(usize::MAX, -∞)` when the shard saw no rows — never
/// produced by [`assign_partials_chunked`], but representable on the wire).
#[derive(Clone, Debug, PartialEq)]
pub struct AccumShard {
    /// `k × d` per-cluster coordinate sums (row-major).
    pub sums: Vec<f64>,
    /// Points per cluster within this shard.
    pub counts: Vec<u64>,
    /// Cost contribution of this shard.
    pub cost: f64,
    /// `(global point index, d²)` of the shard's farthest point.
    pub farthest: (usize, f64),
}

impl AccumShard {
    fn new(k: usize, d: usize) -> Self {
        AccumShard {
            sums: vec![0.0; k * d],
            counts: vec![0; k],
            cost: 0.0,
            farthest: (usize::MAX, f64::NEG_INFINITY),
        }
    }
}

/// The per-accumulation-shard partials behind [`assign_and_sum_chunked`]:
/// labels for the source's rows plus one [`AccumShard`] per accumulation
/// shard of the **global** layout (`sum_shard_size` of `global_n`), in
/// shard order. `row_offset` is the global index of the source's first row;
/// farthest-point records carry global indices.
///
/// Distributed workers call this on their local shard of the data (their
/// `row_offset` is validated to sit on an accumulation-shard boundary) and
/// ship the partials; the coordinator concatenates them in worker order
/// and folds with [`fold_accum_shards`] — reproducing the in-memory
/// [`crate::assign::assign_and_sum`] fold bit for bit.
///
/// The returned [`KernelStats`] account for this pass's local kernel work
/// (distance evaluations performed / norm-bound prunes). Distributed
/// workers ship them as the trailing stats field of their partials frame
/// (the [`AccumShard`] wire format itself does not carry them).
pub fn assign_partials_chunked(
    source: &dyn ChunkedSource,
    centers: &PointMatrix,
    exec: &Executor,
    row_offset: usize,
    global_n: usize,
) -> Result<(Vec<u32>, Vec<AccumShard>, KernelStats), KMeansError> {
    if source.is_empty() {
        return Err(KMeansError::EmptyInput);
    }
    if centers.is_empty() || centers.len() > global_n {
        return Err(KMeansError::InvalidK {
            k: centers.len(),
            n: global_n,
        });
    }
    if source.dim() != centers.dim() {
        return Err(KMeansError::DimensionMismatch {
            expected: source.dim(),
            got: centers.dim(),
        });
    }
    let n = source.len();
    let k = centers.len();
    let d = source.dim();
    let sum_size = sum_shard_size(exec, global_n);

    let mut labels = vec![0u32; n];
    let mut d2 = vec![0.0f64; source.block_rows()];
    let mut partials: Vec<AccumShard> = Vec::new();
    let mut partial = AccumShard::new(k, d);
    // First boundary in local coordinates: the next global multiple of
    // `sum_size` after `row_offset` (aligned offsets make this `sum_size`).
    let mut shard_end = sum_size - row_offset % sum_size;
    let mut buf = source.block_buffer();
    let kernel = AssignKernel::new(centers);
    let mut stats = KernelStats::default();
    for_each_block(source, &mut buf, |_b, start, block| {
        let end = start + block.len();
        let chunk = &mut d2[..block.len()];
        let shard_stats =
            exec.update_map_shards2(&mut labels[start..end], chunk, |_, local, cl, cd| {
                kernel.assign(block, local..local + cl.len(), cl, cd)
            });
        for s in shard_stats {
            stats.absorb(s);
        }
        for (off, &dist) in d2[..block.len()].iter().enumerate() {
            let gi = start + off;
            if gi == shard_end {
                partials.push(std::mem::replace(&mut partial, AccumShard::new(k, d)));
                shard_end += sum_size;
            }
            let c = labels[gi] as usize;
            partial.counts[c] += 1;
            partial.cost += dist;
            if dist > partial.farthest.1 {
                partial.farthest = (row_offset + gi, dist);
            }
            let dst = &mut partial.sums[c * d..(c + 1) * d];
            for (acc, &v) in dst.iter_mut().zip(block.row(off)) {
                *acc += v;
            }
        }
        Ok(())
    })?;
    partials.push(partial);
    Ok((labels, partials, stats))
}

/// Folds accumulation-shard partials (in shard order) into one
/// [`ClusterSums`] — the exact reducer of the in-memory
/// [`crate::assign::assign_and_sum`] pass. [`AccumShard`]s carry no
/// kernel counters (those travel separately, summed order-free), so the
/// folded `stats` start at zero; callers that have them
/// ([`assign_and_sum_chunked`], the distributed coordinator) stamp them
/// afterwards.
pub fn fold_accum_shards(k: usize, d: usize, shards: &[AccumShard]) -> ClusterSums {
    let mut out = ClusterSums {
        sums: vec![0.0; k * d],
        counts: vec![0; k],
        cost: 0.0,
        farthest: Vec::new(),
        stats: KernelStats::default(),
    };
    for p in shards {
        for (acc, v) in out.sums.iter_mut().zip(&p.sums) {
            *acc += v;
        }
        for (acc, v) in out.counts.iter_mut().zip(&p.counts) {
            *acc += v;
        }
        out.cost += p.cost;
        if p.farthest.0 != usize::MAX {
            out.farthest.push(p.farthest);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::assign_and_sum;
    use crate::cost::{potential, CostTracker};
    use kmeans_data::InMemorySource;
    use kmeans_par::Parallelism;
    use kmeans_util::Rng;

    fn blobs(n: usize) -> PointMatrix {
        let mut m = PointMatrix::new(2);
        let mut rng = Rng::new(7);
        for i in 0..n {
            let c = (i % 3) as f64 * 40.0;
            m.push(&[c + rng.normal(), c * 0.5 + rng.normal()]).unwrap();
        }
        m
    }

    fn source(m: &PointMatrix, block_rows: usize) -> InMemorySource {
        InMemorySource::new(m.clone(), block_rows).unwrap()
    }

    #[test]
    fn shard_sum_matches_map_reduce_for_any_block_split() {
        let values: Vec<f64> = (0..1000).map(|i| ((i as f64) * 1.37).sqrt()).collect();
        for shard_size in [1, 7, 64, 1000, 2048] {
            let exec = Executor::sequential().with_shard_size(shard_size);
            let expected = exec
                .map_reduce(
                    values.len(),
                    |_, r| r.map(|i| values[i]).sum::<f64>(),
                    |a, b| a + b,
                )
                .unwrap();
            // Push in arbitrary chunk groupings; result must not change.
            for chunk in [1usize, 3, 100, 1000] {
                let mut folder = ShardSum::new(shard_size);
                for piece in values.chunks(chunk) {
                    for &v in piece {
                        folder.push(v);
                    }
                }
                assert_eq!(
                    folder.finish().to_bits(),
                    expected.to_bits(),
                    "shard {shard_size}, chunk {chunk}"
                );
            }
        }
    }

    #[test]
    fn potential_chunked_is_bit_identical() {
        let m = blobs(500);
        let centers = PointMatrix::from_flat(vec![0.0, 0.0, 40.0, 20.0, 80.0, 40.0], 2).unwrap();
        for threads in [Parallelism::Sequential, Parallelism::Threads(3)] {
            let exec = Executor::new(threads).with_shard_size(64);
            let expected = potential(&m, &centers, &exec);
            for block_rows in [1, 13, 64, 100, 500, 1000] {
                let got = potential_chunked(&source(&m, block_rows), &centers, &exec).unwrap();
                assert_eq!(got.to_bits(), expected.to_bits(), "block_rows {block_rows}");
            }
        }
    }

    #[test]
    fn potential_chunked_rejects_non_finite_and_bad_shapes() {
        let m = PointMatrix::from_flat(vec![0.0, 1.0, f64::NAN, 3.0], 2).unwrap();
        let centers = PointMatrix::from_flat(vec![0.0, 0.0], 2).unwrap();
        let exec = Executor::sequential();
        assert_eq!(
            potential_chunked(&source(&m, 1), &centers, &exec).unwrap_err(),
            KMeansError::NonFiniteData { point: 1, dim: 0 }
        );
        let wrong = PointMatrix::from_flat(vec![0.0], 1).unwrap();
        assert!(matches!(
            potential_chunked(&source(&blobs(10), 4), &wrong, &exec),
            Err(KMeansError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn chunked_tracker_matches_in_memory_tracker() {
        let m = blobs(300);
        let exec = Executor::sequential().with_shard_size(32);
        let mut centers = PointMatrix::from_flat(vec![1.0, 1.0], 2).unwrap();
        let mut mem = CostTracker::new(&m, &centers, &exec);
        let mut chunked = ChunkedCostTracker::new(&source(&m, 37), &centers, &exec).unwrap();
        assert_eq!(chunked.potential().to_bits(), mem.potential().to_bits());
        assert_eq!(chunked.d2(), mem.d2());

        centers.push(&[40.0, 20.0]).unwrap();
        centers.push(&[80.0, 40.0]).unwrap();
        mem.update(&centers, 1, &exec);
        chunked.update(&source(&m, 37), &centers, 1, &exec).unwrap();
        assert_eq!(chunked.potential().to_bits(), mem.potential().to_bits());
        assert_eq!(chunked.d2(), mem.d2());
        assert_eq!(chunked.weights(3), mem.weights(3));
    }

    #[test]
    fn gather_preserves_request_order_and_duplicates() {
        let m = blobs(50);
        let src = source(&m, 8);
        let mut buf = src.block_buffer();
        let indices = [49, 0, 17, 0, 33, 49];
        let rows = gather_rows(&src, &indices, &mut buf).unwrap();
        assert_eq!(rows.len(), indices.len());
        for (j, &i) in indices.iter().enumerate() {
            assert_eq!(rows.row(j), m.row(i), "slot {j} (point {i})");
        }
    }

    #[test]
    fn assign_and_sum_chunked_is_bit_identical() {
        let m = blobs(700);
        let centers = PointMatrix::from_flat(vec![0.0, 0.0, 40.0, 20.0, 80.0, 40.0], 2).unwrap();
        for threads in [Parallelism::Sequential, Parallelism::Threads(4)] {
            let exec = Executor::new(threads).with_shard_size(16);
            let (ref_labels, ref_sums) = assign_and_sum(&m, &centers, &exec);
            for block_rows in [1, 9, 64, 350, 700, 4096] {
                let (labels, sums) =
                    assign_and_sum_chunked(&source(&m, block_rows), &centers, &exec).unwrap();
                assert_eq!(labels, ref_labels, "block_rows {block_rows}");
                assert_eq!(sums.counts, ref_sums.counts);
                assert_eq!(sums.cost.to_bits(), ref_sums.cost.to_bits());
                assert_eq!(sums.farthest, ref_sums.farthest);
                let a: Vec<u64> = sums.sums.iter().map(|f| f.to_bits()).collect();
                let b: Vec<u64> = ref_sums.sums.iter().map(|f| f.to_bits()).collect();
                assert_eq!(a, b, "block_rows {block_rows}");
            }
        }
    }

    #[test]
    fn chunked_validation_rejects_bad_shapes() {
        let m = blobs(10);
        let src = source(&m, 4);
        assert!(matches!(
            validate_source(&src, 0),
            Err(KMeansError::InvalidK { .. })
        ));
        assert!(matches!(
            validate_source(&src, 11),
            Err(KMeansError::InvalidK { .. })
        ));
        let wrong = PointMatrix::from_flat(vec![0.0], 1).unwrap();
        assert!(matches!(
            validate_refine_inputs_chunked(&src, &wrong),
            Err(KMeansError::DimensionMismatch { .. })
        ));
    }
}
