//! The recording decorator over any [`RoundBackend`]: every round
//! primitive wrapped in a span — round kind, wall time, wire bytes,
//! kernel counters — without touching a single result.
//!
//! [`RecordingBackend`] is how the flight recorder threads through all
//! three execution modes with one implementation: the backend-generic
//! drivers see a `RoundBackend` like any other, the wrapped backend
//! answers every call unchanged, and the wrapper only *reads* what
//! flows past it (the observability contract: instrumented fits are
//! bit-identical to uninstrumented ones, pinned by
//! `tests/obs_parity.rs`). Per-round wire traffic comes from diffing
//! the inner backend's monotonic [`RoundBackend::wire_bytes`] counter
//! around each call — local backends report none, the cluster backend
//! reports coordinator-side send+receive totals.

use crate::assign::ClusterSums;
use crate::driver::{BackendKind, LabelFetch, RoundBackend, SampleOut, SampleSpec};
use crate::error::KMeansError;
use kmeans_data::{ChunkedSource, PointMatrix};
use kmeans_obs::{arg_str, arg_u64, ArgValue, Recorder, SpanStart};
use kmeans_par::Executor;

/// Span category used for round-primitive spans.
pub const ROUND_CAT: &str = "round";

/// A [`RoundBackend`] decorator that records one span per round
/// primitive into a [`Recorder`]. With a disabled recorder every call
/// is a plain delegation plus one branch.
pub struct RecordingBackend<'a> {
    inner: &'a mut dyn RoundBackend,
    recorder: Recorder,
}

impl<'a> RecordingBackend<'a> {
    /// Wraps `inner`, recording into `recorder`.
    pub fn new(inner: &'a mut dyn RoundBackend, recorder: Recorder) -> Self {
        RecordingBackend { inner, recorder }
    }

    /// Opens a span: the timer token plus the wire counter baseline.
    fn begin(&self) -> (SpanStart, u64) {
        if self.recorder.is_enabled() {
            (self.recorder.start(), self.inner.wire_bytes().unwrap_or(0))
        } else {
            (self.recorder.start(), 0)
        }
    }

    /// Closes the span opened by [`RecordingBackend::begin`], attaching
    /// the per-call wire-byte delta, the backend kind, and `extra`.
    fn finish(
        &self,
        start: SpanStart,
        wire_before: u64,
        name: &str,
        extra: impl FnOnce() -> Vec<(String, ArgValue)>,
    ) {
        if !self.recorder.is_enabled() {
            return;
        }
        let kind = self.inner.kind();
        let wire_delta = self
            .inner
            .wire_bytes()
            .map(|now| now.saturating_sub(wire_before));
        self.recorder.span(start, name, ROUND_CAT, || {
            let mut args = extra();
            args.push(arg_str("backend", kind.name()));
            if let Some(bytes) = wire_delta {
                args.push(arg_u64("wire_bytes", bytes));
            }
            args
        });
    }
}

impl RoundBackend for RecordingBackend<'_> {
    fn kind(&self) -> BackendKind {
        self.inner.kind()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn local_source(&self) -> Option<(&dyn ChunkedSource, &Executor)> {
        self.inner.local_source()
    }

    fn validate(&self, k: usize) -> Result<(), KMeansError> {
        self.inner.validate(k)
    }

    fn validate_refine(&self, centers: &PointMatrix) -> Result<(), KMeansError> {
        self.inner.validate_refine(centers)
    }

    fn wire_bytes(&self) -> Option<u64> {
        self.inner.wire_bytes()
    }

    fn gather_rows(&mut self, indices: &[usize]) -> Result<PointMatrix, KMeansError> {
        let (start, wire) = self.begin();
        let out = self.inner.gather_rows(indices);
        let rows = indices.len() as u64;
        self.finish(start, wire, "gather_rows", || vec![arg_u64("rows", rows)]);
        out
    }

    fn gather_rows_into(
        &mut self,
        indices: &[usize],
        out: &mut PointMatrix,
    ) -> Result<(), KMeansError> {
        let (start, wire) = self.begin();
        let result = self.inner.gather_rows_into(indices, out);
        let rows = indices.len() as u64;
        self.finish(start, wire, "gather_rows", || vec![arg_u64("rows", rows)]);
        result
    }

    fn tracker_init(&mut self, centers: &PointMatrix) -> Result<f64, KMeansError> {
        let (start, wire) = self.begin();
        let out = self.inner.tracker_init(centers);
        let centers_n = centers.len() as u64;
        self.finish(start, wire, "tracker_init", || {
            vec![arg_u64("centers", centers_n)]
        });
        out
    }

    fn tracker_update(&mut self, from: usize, new_rows: &PointMatrix) -> Result<f64, KMeansError> {
        let (start, wire) = self.begin();
        let out = self.inner.tracker_update(from, new_rows);
        let new_n = new_rows.len() as u64;
        self.finish(start, wire, "tracker_update", || {
            vec![arg_u64("new_candidates", new_n)]
        });
        out
    }

    fn sample_bernoulli(
        &mut self,
        round: usize,
        seed: u64,
        l: f64,
        phi: f64,
    ) -> Result<(Vec<usize>, PointMatrix), KMeansError> {
        let (start, wire) = self.begin();
        let out = self.inner.sample_bernoulli(round, seed, l, phi);
        let sampled = out.as_ref().map(|(idx, _)| idx.len() as u64).unwrap_or(0);
        self.finish(start, wire, "sample_bernoulli", || {
            vec![arg_u64("round", round as u64), arg_u64("sampled", sampled)]
        });
        out
    }

    fn sample_exact_keys(
        &mut self,
        round: usize,
        seed: u64,
        m: usize,
    ) -> Result<Vec<(f64, usize)>, KMeansError> {
        let (start, wire) = self.begin();
        let out = self.inner.sample_exact_keys(round, seed, m);
        let keys = out.as_ref().map(|k| k.len() as u64).unwrap_or(0);
        self.finish(start, wire, "sample_exact", || {
            vec![arg_u64("round", round as u64), arg_u64("keys", keys)]
        });
        out
    }

    fn gather_d2(&mut self) -> Result<Vec<f64>, KMeansError> {
        let (start, wire) = self.begin();
        let out = self.inner.gather_d2();
        let rows = out.as_ref().map(|d| d.len() as u64).unwrap_or(0);
        self.finish(start, wire, "gather_d2", || vec![arg_u64("rows", rows)]);
        out
    }

    fn candidate_weights(&mut self, m: usize) -> Result<Vec<f64>, KMeansError> {
        let (start, wire) = self.begin();
        let out = self.inner.candidate_weights(m);
        self.finish(start, wire, "candidate_weights", || {
            vec![arg_u64("candidates", m as u64)]
        });
        out
    }

    fn assign(&mut self, centers: &PointMatrix) -> Result<(u64, ClusterSums), KMeansError> {
        let (start, wire) = self.begin();
        let out = self.inner.assign(centers);
        let (changed, distance, pruned) = match &out {
            Ok((changed, sums)) => (
                *changed,
                sums.stats.distance_computations,
                sums.stats.pruned_by_norm_bound,
            ),
            Err(_) => (0, 0, 0),
        };
        let centers_n = centers.len() as u64;
        self.finish(start, wire, "assign", || {
            vec![
                arg_u64("centers", centers_n),
                arg_u64("changed", changed),
                arg_u64("distance_computations", distance),
                arg_u64("pruned_by_norm_bound", pruned),
            ]
        });
        out
    }

    fn fetch_labels(&mut self) -> Result<Vec<u32>, KMeansError> {
        let (start, wire) = self.begin();
        let out = self.inner.fetch_labels();
        let rows = out.as_ref().map(|l| l.len() as u64).unwrap_or(0);
        self.finish(start, wire, "fetch_labels", || vec![arg_u64("rows", rows)]);
        out
    }

    fn potential(&mut self, centers: &PointMatrix) -> Result<f64, KMeansError> {
        let (start, wire) = self.begin();
        let out = self.inner.potential(centers);
        let centers_n = centers.len() as u64;
        self.finish(start, wire, "potential", || {
            vec![arg_u64("centers", centers_n)]
        });
        out
    }

    // Fused rounds must delegate to the inner *fused* methods — falling
    // back to the trait defaults would silently decompose a traced
    // distributed fit back into un-fused wire conversations. Each fused
    // call records one span, matching its one wire round trip.

    fn tracker_init_sampled(
        &mut self,
        centers: &PointMatrix,
        round: usize,
        seed: u64,
        spec: Option<SampleSpec>,
    ) -> Result<(f64, Option<SampleOut>), KMeansError> {
        let (start, wire) = self.begin();
        let out = self.inner.tracker_init_sampled(centers, round, seed, spec);
        let centers_n = centers.len() as u64;
        let sampled = sample_size(&out);
        self.finish(start, wire, "tracker_init+sample", || {
            vec![
                arg_u64("centers", centers_n),
                arg_u64("round", round as u64),
                arg_u64("sampled", sampled),
            ]
        });
        out
    }

    fn tracker_update_sampled(
        &mut self,
        from: usize,
        new_rows: &PointMatrix,
        round: usize,
        seed: u64,
        spec: Option<SampleSpec>,
    ) -> Result<(f64, Option<SampleOut>), KMeansError> {
        let (start, wire) = self.begin();
        let out = self
            .inner
            .tracker_update_sampled(from, new_rows, round, seed, spec);
        let new_n = new_rows.len() as u64;
        let sampled = sample_size(&out);
        self.finish(start, wire, "tracker_update+sample", || {
            vec![
                arg_u64("new_candidates", new_n),
                arg_u64("round", round as u64),
                arg_u64("sampled", sampled),
            ]
        });
        out
    }

    fn tracker_update_weighted(
        &mut self,
        from: usize,
        new_rows: &PointMatrix,
        m: usize,
    ) -> Result<Vec<f64>, KMeansError> {
        let (start, wire) = self.begin();
        let out = self.inner.tracker_update_weighted(from, new_rows, m);
        let new_n = new_rows.len() as u64;
        self.finish(start, wire, "tracker_update+weights", || {
            vec![arg_u64("new_candidates", new_n), arg_u64("candidates", m as u64)]
        });
        out
    }

    fn assign_fused(
        &mut self,
        centers: &PointMatrix,
        fetch: LabelFetch,
    ) -> Result<(u64, ClusterSums, Option<Vec<u32>>), KMeansError> {
        let (start, wire) = self.begin();
        let out = self.inner.assign_fused(centers, fetch);
        let (changed, distance, pruned, labels) = match &out {
            Ok((changed, sums, labels)) => (
                *changed,
                sums.stats.distance_computations,
                sums.stats.pruned_by_norm_bound,
                labels.is_some() as u64,
            ),
            Err(_) => (0, 0, 0, 0),
        };
        let centers_n = centers.len() as u64;
        self.finish(start, wire, "assign", || {
            vec![
                arg_u64("centers", centers_n),
                arg_u64("changed", changed),
                arg_u64("distance_computations", distance),
                arg_u64("pruned_by_norm_bound", pruned),
                arg_u64("labels_shipped", labels),
            ]
        });
        out
    }

    fn preload_rows(&mut self, indices: &[usize]) -> Result<(), KMeansError> {
        let (start, wire) = self.begin();
        let out = self.inner.preload_rows(indices);
        let rows = indices.len() as u64;
        self.finish(start, wire, "preload_rows", || vec![arg_u64("rows", rows)]);
        out
    }
}

/// Sample size carried by a fused tracker round's result (for spans).
fn sample_size(out: &Result<(f64, Option<SampleOut>), KMeansError>) -> u64 {
    match out {
        Ok((_, Some(SampleOut::Picked { indices, .. }))) => indices.len() as u64,
        Ok((_, Some(SampleOut::Keys(keys)))) => keys.len() as u64,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::InMemoryBackend;
    use kmeans_obs::FakeClock;
    use kmeans_par::Parallelism;

    fn blobs() -> PointMatrix {
        let mut m = PointMatrix::new(2);
        for (cx, cy) in [(0.0, 0.0), (30.0, 0.0)] {
            for i in 0..30 {
                m.push(&[cx + (i % 5) as f64 * 0.1, cy + (i / 5) as f64 * 0.1])
                    .unwrap();
            }
        }
        m
    }

    #[test]
    fn wrapper_delegates_results_unchanged_and_records_spans() {
        let points = blobs();
        let exec = Executor::new(Parallelism::Sequential);
        let centers = points.select(&[0, 35]);

        let mut plain = InMemoryBackend::new(&points, &exec);
        let plain_phi = plain.tracker_init(&centers).unwrap();
        let (plain_changed, plain_sums) = plain.assign(&centers).unwrap();

        let clock = FakeClock::new(0);
        let recorder = Recorder::with_clock(clock.clone());
        let mut inner = InMemoryBackend::new(&points, &exec);
        let mut recorded = RecordingBackend::new(&mut inner, recorder.clone());
        assert_eq!(recorded.kind(), BackendKind::InMemory);
        assert_eq!(recorded.len(), points.len());
        assert_eq!(recorded.wire_bytes(), None);
        let phi = recorded.tracker_init(&centers).unwrap();
        clock.advance(10);
        let (changed, sums) = recorded.assign(&centers).unwrap();

        assert_eq!(phi.to_bits(), plain_phi.to_bits());
        assert_eq!(changed, plain_changed);
        assert_eq!(sums.cost.to_bits(), plain_sums.cost.to_bits());

        let events = recorder.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "tracker_init");
        assert_eq!(events[0].cat, ROUND_CAT);
        assert_eq!(events[1].name, "assign");
        // Local backends attach no wire bytes; the kernel counters and
        // backend kind ride along.
        assert!(events[1].args.iter().any(|(k, _)| k == "changed"));
        assert!(events[1]
            .args
            .iter()
            .any(|(k, v)| k == "backend" && *v == ArgValue::Str("in-memory".into())));
        assert!(!events[1].args.iter().any(|(k, _)| k == "wire_bytes"));
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let points = blobs();
        let exec = Executor::new(Parallelism::Sequential);
        let centers = points.select(&[0, 35]);
        let recorder = Recorder::disabled();
        let mut inner = InMemoryBackend::new(&points, &exec);
        let mut recorded = RecordingBackend::new(&mut inner, recorder.clone());
        recorded.tracker_init(&centers).unwrap();
        recorded.assign(&centers).unwrap();
        assert!(recorder.events().is_empty());
    }
}
