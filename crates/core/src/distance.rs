//! Squared-Euclidean distance kernels.
//!
//! Everything in the paper is driven by `d²(x, C) = min_{c∈C} ‖x−c‖²`:
//! the k-means potential (§3.1), the k-means++ sampling distribution
//! (Algorithm 1, line 3), and the k-means|| oversampling probabilities
//! (Algorithm 2, line 4). These kernels are the single hot path of the
//! workspace; `benches/distance.rs` tracks them.

use kmeans_data::PointMatrix;

/// Squared Euclidean distance between two equal-length slices.
///
/// Manually unrolled by four: at the paper's dimensionalities (15–58) this
/// keeps four independent FMA chains in flight, which LLVM does not always
/// do for a plain fold.
///
/// # Length contract
///
/// Mismatched lengths are handled by an explicit early return: both slices
/// are truncated to the common prefix and the distance is computed over
/// that prefix, identically in debug and release builds. (The pre-fix
/// behavior silently truncated in release only, via `zip`, while debug
/// builds asserted — a contract divergence this wrapper removes.) Callers
/// inside the workspace always pass equal lengths: rows come from
/// [`PointMatrix`]es whose dimensionality is validated at construction,
/// and every entry point checks `points.dim() == centers.dim()` up front.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() {
        // Explicit, documented truncation — not an implicit zip artifact.
        let n = a.len().min(b.len());
        return sq_dist(&a[..n], &b[..n]);
    }
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        let d0 = ca[0] - cb[0];
        let d1 = ca[1] - cb[1];
        let d2 = ca[2] - cb[2];
        let d3 = ca[3] - cb[3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    let mut tail = 0.0;
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// Index and squared distance of the nearest center to `point`.
///
/// Ties break toward the lower index (deterministic).
///
/// `point` must have the centers' dimensionality — guaranteed here because
/// both sides come out of dimension-checked [`PointMatrix`]es (see the
/// [`sq_dist`] length contract for what happens otherwise).
///
/// # Panics
///
/// Panics if `centers` is empty.
#[inline]
pub fn nearest(point: &[f64], centers: &PointMatrix) -> (usize, f64) {
    assert!(!centers.is_empty(), "nearest: no centers");
    let mut best = 0usize;
    let mut best_d2 = f64::INFINITY;
    for (i, c) in centers.rows().enumerate() {
        let d2 = sq_dist_bounded(point, c, best_d2);
        if d2 < best_d2 {
            best = i;
            best_d2 = d2;
        }
    }
    (best, best_d2)
}

/// One 8-coordinate block of the bounded squared-distance accumulation:
/// the *sequential* local sum `(((d₀²+d₁²)+d₂²)+…)+d₇²` that
/// [`sq_dist_bounded`] adds onto its running accumulator once per chunk.
///
/// This is the workspace's **signature accumulation order** for
/// nearest-center scans: every value [`nearest`] can return was produced
/// by these exact operations in this exact sequence, and the batch kernel
/// ([`crate::kernel`]) calls the same helper per point–center pair so the
/// two paths cannot drift. Callers pass equal-length slices (normally 8
/// coordinates from `chunks_exact(8)`).
#[inline(always)]
pub(crate) fn sq_chunk8(a: &[f64], b: &[f64]) -> f64 {
    let mut local = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        local += d * d;
    }
    local
}

/// The remainder (`len % 8` coordinates) of the bounded squared-distance
/// accumulation: each squared difference is added **directly onto the
/// running accumulator**, element by element — a different order than
/// summing the tail locally first, and therefore kept as its own shared
/// helper (see [`sq_chunk8`]).
#[inline(always)]
pub(crate) fn sq_tail(acc: &mut f64, a: &[f64], b: &[f64]) {
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        *acc += d * d;
    }
}

/// Like [`sq_dist`], but abandons early once the partial sum exceeds
/// `bound` (returning a value `≥ bound`). This "partial distance" pruning
/// is the classic nearest-neighbor trick; with hundreds of candidate
/// centers (Step 7 of Algorithm 2) it skips most of each row.
///
/// Shares [`sq_dist`]'s length contract: mismatched slices are truncated
/// to the common prefix, explicitly and in every build profile. The
/// accumulation itself is built from the shared `sq_chunk8`/`sq_tail`
/// helpers, the same ones the batch kernel ([`crate::kernel`]) uses — a
/// single definition of the per-pair operation order, so the scalar and
/// batched paths stay bit-identical by construction.
#[inline]
pub fn sq_dist_bounded(a: &[f64], b: &[f64], bound: f64) -> f64 {
    if a.len() != b.len() {
        let n = a.len().min(b.len());
        return sq_dist_bounded(&a[..n], &b[..n], bound);
    }
    let mut acc = 0.0f64;
    // Check the bound every 8 coordinates: frequent enough to prune,
    // infrequent enough not to stall the pipeline.
    let mut chunks_a = a.chunks_exact(8);
    let mut chunks_b = b.chunks_exact(8);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        acc += sq_chunk8(ca, cb);
        if acc >= bound {
            return acc;
        }
    }
    sq_tail(&mut acc, chunks_a.remainder(), chunks_b.remainder());
    acc
}

/// Nearest center among `centers[from..]` only (used for incremental
/// `d²` maintenance: only newly added centers need to be scanned).
///
/// Returns `None` when `from >= centers.len()`.
#[inline]
pub fn nearest_from(point: &[f64], centers: &PointMatrix, from: usize) -> Option<(usize, f64)> {
    if from >= centers.len() {
        return None;
    }
    let mut best = from;
    let mut best_d2 = f64::INFINITY;
    for i in from..centers.len() {
        let d2 = sq_dist_bounded(point, centers.row(i), best_d2);
        if d2 < best_d2 {
            best = i;
            best_d2 = d2;
        }
    }
    Some((best, best_d2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    #[test]
    fn matches_brute_force_at_all_lengths() {
        // Exercise every unroll remainder case (len % 4 in 0..4, len % 8).
        for len in 0..40 {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 1.3).sin()).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64 * 0.7).cos()).collect();
            let expected = brute(&a, &b);
            assert!(
                (sq_dist(&a, &b) - expected).abs() < 1e-12 * (1.0 + expected),
                "len {len}"
            );
            let bounded = sq_dist_bounded(&a, &b, f64::INFINITY);
            assert!((bounded - expected).abs() < 1e-12 * (1.0 + expected));
        }
    }

    #[test]
    fn zero_distance_to_self() {
        let a = [1.0, -2.0, 3.5, 0.0, 9.9];
        assert_eq!(sq_dist(&a, &a), 0.0);
    }

    #[test]
    fn mismatched_lengths_truncate_to_common_prefix_in_every_profile() {
        // Regression for the documented length contract: mismatched slices
        // compute over the common prefix — explicitly, in debug AND
        // release builds (previously debug asserted while release silently
        // zip-truncated).
        let long = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 100.0];
        let short = &long[..9];
        assert_eq!(sq_dist(&long, short), 0.0);
        assert_eq!(sq_dist(short, &long), 0.0);
        assert_eq!(sq_dist_bounded(&long, short, f64::INFINITY), 0.0);
        // The prefix distance matches an equal-length call on the prefix.
        let a = [0.0, 3.0, 10.0];
        let b = [4.0, 3.0];
        assert_eq!(sq_dist(&a, &b), sq_dist(&a[..2], &b));
        assert_eq!(sq_dist(&a, &b), 16.0);
        // Empty prefix: zero distance by convention.
        assert_eq!(sq_dist(&a, &[]), 0.0);
    }

    #[test]
    fn bounded_abandons_early_but_never_underestimates() {
        let a = vec![0.0; 64];
        let b = vec![1.0; 64]; // true distance 64
        let d = sq_dist_bounded(&a, &b, 10.0);
        assert!(d >= 10.0, "must meet the bound: {d}");
        assert!(d <= 64.0 + 1e-12);
        // Bound larger than the true distance → exact result.
        assert!((sq_dist_bounded(&a, &b, 1e9) - 64.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_finds_closest_and_breaks_ties_low() {
        let centers =
            PointMatrix::from_flat(vec![0.0, 0.0, 10.0, 0.0, 0.0, 10.0, 10.0, 0.0], 2).unwrap();
        let (i, d2) = nearest(&[9.0, 0.5], &centers);
        assert_eq!(i, 1);
        assert!((d2 - 1.25).abs() < 1e-12);
        // Equidistant between centers 1 and 3 (identical): lower index wins.
        let (i, _) = nearest(&[10.0, 0.0], &centers);
        assert_eq!(i, 1);
    }

    #[test]
    #[should_panic(expected = "no centers")]
    fn nearest_empty_centers_panics() {
        nearest(&[0.0], &PointMatrix::new(1));
    }

    #[test]
    fn nearest_from_scans_suffix_only() {
        let centers = PointMatrix::from_flat(vec![0.0, 0.0, 100.0, 100.0, 5.0, 5.0], 2).unwrap();
        // Full scan would give center 0 for the origin; suffix scan from 1
        // must pick between centers 1 and 2.
        let (i, d2) = nearest_from(&[0.0, 0.0], &centers, 1).unwrap();
        assert_eq!(i, 2);
        assert!((d2 - 50.0).abs() < 1e-12);
        assert!(nearest_from(&[0.0, 0.0], &centers, 3).is_none());
        assert!(nearest_from(&[0.0, 0.0], &centers, 99).is_none());
    }
}
