//! Mini-batch k-means (Sculley, WWW 2010 — reference \[31] of the paper).
//!
//! The paper's related-work section cites Sculley's web-scale k-means as a
//! batch-oriented modification of Lloyd's iteration; its conclusion asks
//! whether "such modifications can also be efficiently parallelized". This
//! module provides the algorithm as an extension: each step samples a small
//! uniform batch, assigns it to the current centers, and moves each center
//! toward the batch members assigned to it with a per-center learning rate
//! `1 / (total points seen by that center)`.
//!
//! It pairs naturally with k-means|| seeding: the seeding pays a handful of
//! full passes to place the centers well, after which mini-batch steps
//! refine them touching only `O(batch · iters)` points.

use crate::error::KMeansError;
use crate::kernel::KernelStats;
use kmeans_data::PointMatrix;

/// Configuration for mini-batch refinement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MiniBatchConfig {
    /// Points sampled (with replacement) per step.
    pub batch_size: usize,
    /// Number of steps.
    pub iterations: usize,
}

impl Default for MiniBatchConfig {
    fn default() -> Self {
        MiniBatchConfig {
            batch_size: 1_024,
            iterations: 100,
        }
    }
}

/// Runs mini-batch k-means from the given initial centers.
///
/// Returns the refined centers. Deterministic per seed.
///
/// # Errors
///
/// Fails on empty input, mismatched dimensions, or a zero batch/iteration
/// configuration.
pub fn minibatch_kmeans(
    points: &PointMatrix,
    initial_centers: &PointMatrix,
    config: &MiniBatchConfig,
    seed: u64,
) -> Result<PointMatrix, KMeansError> {
    Ok(minibatch_kmeans_traced(points, initial_centers, config, seed)?.0)
}

/// [`minibatch_kmeans`] with kernel work accounting: also returns the
/// batch-assignment [`KernelStats`] accumulated across all steps (the
/// centers are bit-identical to the plain entry point's).
///
/// Thin wrapper over the backend-generic
/// [`drive_minibatch`](crate::driver::drive_minibatch) on an
/// [`InMemoryBackend`](crate::driver::InMemoryBackend): the step loop
/// exists once, shared bit-for-bit with the chunked and distributed
/// execution modes. (The executor is irrelevant here — mini-batch work
/// is batch-sized and sequential by design.)
pub fn minibatch_kmeans_traced(
    points: &PointMatrix,
    initial_centers: &PointMatrix,
    config: &MiniBatchConfig,
    seed: u64,
) -> Result<(PointMatrix, KernelStats), KMeansError> {
    let exec = kmeans_par::Executor::sequential();
    let mut backend = crate::driver::InMemoryBackend::new(points, &exec);
    crate::driver::drive_minibatch(&mut backend, initial_centers, config, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::potential;
    use kmeans_par::Executor;
    use kmeans_util::Rng;

    fn blobs() -> PointMatrix {
        let mut m = PointMatrix::new(1);
        let mut rng = Rng::new(99);
        for c in [0.0, 100.0, 200.0] {
            for _ in 0..300 {
                m.push(&[c + rng.normal()]).unwrap();
            }
        }
        m
    }

    #[test]
    fn improves_a_poor_initialization() {
        let points = blobs();
        let init = PointMatrix::from_flat(vec![40.0, 50.0, 60.0], 1).unwrap();
        let exec = Executor::sequential();
        let before = potential(&points, &init, &exec);
        let refined = minibatch_kmeans(
            &points,
            &init,
            &MiniBatchConfig {
                batch_size: 128,
                iterations: 200,
            },
            7,
        )
        .unwrap();
        let after = potential(&points, &refined, &exec);
        assert!(
            after < before / 10.0,
            "mini-batch did not improve: {before} → {after}"
        );
    }

    #[test]
    fn approaches_true_centers_on_separated_blobs() {
        let points = blobs();
        let init = PointMatrix::from_flat(vec![10.0, 110.0, 190.0], 1).unwrap();
        let refined = minibatch_kmeans(&points, &init, &MiniBatchConfig::default(), 3).unwrap();
        let mut got: Vec<f64> = refined.rows().map(|r| r[0]).collect();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (g, t) in got.iter().zip([0.0, 100.0, 200.0]) {
            assert!((g - t).abs() < 2.0, "center {g} vs true {t}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let points = blobs();
        let init = PointMatrix::from_flat(vec![0.0, 100.0, 200.0], 1).unwrap();
        let a = minibatch_kmeans(&points, &init, &MiniBatchConfig::default(), 5).unwrap();
        let b = minibatch_kmeans(&points, &init, &MiniBatchConfig::default(), 5).unwrap();
        assert_eq!(a, b);
        let c = minibatch_kmeans(&points, &init, &MiniBatchConfig::default(), 6).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let points = blobs();
        let init = PointMatrix::from_flat(vec![0.0], 1).unwrap();
        assert!(
            minibatch_kmeans(&PointMatrix::new(1), &init, &MiniBatchConfig::default(), 0).is_err()
        );
        let bad = MiniBatchConfig {
            batch_size: 0,
            iterations: 1,
        };
        assert!(minibatch_kmeans(&points, &init, &bad, 0).is_err());
        let wrong_dim = PointMatrix::from_flat(vec![0.0, 0.0], 2).unwrap();
        assert!(minibatch_kmeans(&points, &wrong_dim, &MiniBatchConfig::default(), 0).is_err());
        assert!(minibatch_kmeans(
            &points,
            &PointMatrix::new(1),
            &MiniBatchConfig::default(),
            0
        )
        .is_err());
    }
}
