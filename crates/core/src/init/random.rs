//! Uniform-random initialization — the classical baseline (§4.2).

use crate::error::KMeansError;
use kmeans_data::PointMatrix;
use kmeans_util::sampling::uniform_distinct;
use kmeans_util::Rng;

/// Selects `k` points uniformly at random, without replacement, as initial
/// centers.
///
/// Distinct *indices* are guaranteed; if the dataset contains duplicate
/// points the returned centers may coincide in value (exactly as with the
/// real algorithm on real data — Lloyd's empty-cluster repair deals with
/// the consequences).
pub fn random_init(
    points: &PointMatrix,
    k: usize,
    rng: &mut Rng,
) -> Result<PointMatrix, KMeansError> {
    super::validate(points, k)?;
    let indices = uniform_distinct(points.len(), k, rng);
    Ok(points.select(&indices))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_k_rows_from_the_dataset() {
        let points = PointMatrix::from_flat((0..100).map(|i| i as f64).collect(), 1).unwrap();
        let mut rng = Rng::new(3);
        let centers = random_init(&points, 10, &mut rng).unwrap();
        assert_eq!(centers.len(), 10);
        for c in centers.rows() {
            assert!(c[0].fract() == 0.0 && (0.0..100.0).contains(&c[0]));
        }
    }

    #[test]
    fn distinct_indices() {
        let points = PointMatrix::from_flat((0..20).map(|i| i as f64).collect(), 1).unwrap();
        let mut rng = Rng::new(4);
        let centers = random_init(&points, 20, &mut rng).unwrap();
        let mut values: Vec<f64> = centers.rows().map(|r| r[0]).collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(values, (0..20).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_per_seed() {
        let points = PointMatrix::from_flat((0..50).map(|i| i as f64).collect(), 1).unwrap();
        let a = random_init(&points, 5, &mut Rng::new(9)).unwrap();
        let b = random_init(&points, 5, &mut Rng::new(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_k() {
        let points = PointMatrix::from_flat(vec![1.0, 2.0], 1).unwrap();
        assert!(random_init(&points, 0, &mut Rng::new(0)).is_err());
        assert!(random_init(&points, 3, &mut Rng::new(0)).is_err());
    }
}
