//! AFK-MC² seeding (Bachem, Lucic, Hassani & Krause, NIPS 2016) —
//! an extension situating k-means|| in the later literature.
//!
//! k-means|| attacks k-means++'s `k` passes by *parallelizing* them; AFK-
//! MC² attacks them by *approximating* the D² distribution with a Markov
//! chain. After one preprocessing pass (building the proposal distribution
//! `q(x) = ½·d²(x, c₁)/φ + ½·1/n` around a uniformly chosen first center),
//! each subsequent center is drawn by running an `m`-step
//! Metropolis-Hastings chain whose stationary distribution is exactly the
//! k-means++ distribution — no further passes over the data.
//!
//! With chain length `m = O(log n)` the seeding quality provably
//! approaches k-means++'s. The integration tests compare all three
//! regimes: Random (no passes, poor quality), AFK-MC² (one pass, near-
//! k-means++ quality), k-means++ (k passes), k-means|| (r passes, parallel).

use crate::cost::CostTracker;
use crate::distance::{nearest, sq_dist_bounded};
use crate::error::KMeansError;
use kmeans_data::PointMatrix;
use kmeans_par::Executor;
use kmeans_util::sampling::AliasSampler;
use kmeans_util::Rng;

/// Runs AFK-MC² seeding with the given Markov-chain length.
///
/// `chain_length = 1` degenerates to sampling from the proposal (roughly
/// one D² step); the authors recommend `m` in the low hundreds. The run
/// costs one full pass (the proposal) plus `O(k²·m·d)` work — independent
/// of `n` beyond the first pass.
///
/// # Errors
///
/// Same input contract as the other initializers, plus `chain_length ≥ 1`.
pub fn afk_mc2(
    points: &PointMatrix,
    k: usize,
    chain_length: usize,
    rng: &mut Rng,
    exec: &Executor,
) -> Result<PointMatrix, KMeansError> {
    super::validate(points, k)?;
    if chain_length == 0 {
        return Err(KMeansError::InvalidConfig(
            "chain_length must be at least 1".into(),
        ));
    }
    let n = points.len();

    // First center: uniform.
    let first = rng.range_usize(n);
    let mut centers = points.select(&[first]);
    if k == 1 {
        return Ok(centers);
    }

    // One pass: d²(x, c₁) for the proposal distribution
    // q(x) = ½·d²/φ + ½/n  (the regularization makes the chain mix from
    // any start, even for adversarial data).
    let tracker = CostTracker::new(points, &centers, exec);
    let phi = tracker.potential();
    let q: Vec<f64> = if phi > 0.0 {
        tracker
            .d2()
            .iter()
            .map(|&d2| 0.5 * d2 / phi + 0.5 / n as f64)
            .collect()
    } else {
        vec![1.0 / n as f64; n]
    };
    let proposal = AliasSampler::new(&q).expect("proposal has positive mass by construction");

    // d²(x, C) against the *current* centers, evaluated lazily per chain
    // state (the chain touches O(k·m) points, not n).
    let dist_to_centers =
        |idx: usize, centers: &PointMatrix| -> f64 { nearest(points.row(idx), centers).1 };

    while centers.len() < k {
        // Initialize the chain from the proposal.
        let mut x = proposal.sample(rng);
        let mut dx = dist_to_centers(x, &centers);
        for _ in 1..chain_length {
            let y = proposal.sample(rng);
            // Cheap bound: accept immediately if y strictly dominates.
            let dy = {
                let row = points.row(y);
                let mut best = f64::INFINITY;
                for c in centers.rows() {
                    best = best.min(sq_dist_bounded(row, c, best));
                }
                best
            };
            // Metropolis–Hastings acceptance for stationary π(x) ∝ d²(x,C).
            let accept = if dx <= 0.0 {
                true // current state is a duplicate of a center: move anywhere
            } else {
                let ratio = (dy * q[x]) / (dx * q[y]);
                ratio >= 1.0 || rng.next_f64() < ratio
            };
            if accept {
                x = y;
                dx = dy;
            }
        }
        // Degenerate guard: if the chain settled on a covered point
        // (duplicate data), fall back to any uncovered point.
        if dx <= 0.0 {
            if let Some(fallback) = (0..n).find(|&i| dist_to_centers(i, &centers) > 0.0) {
                x = fallback;
            }
        }
        centers.push(points.row(x)).expect("dims match");
    }
    Ok(centers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::potential;
    use crate::init::{kmeanspp, random_init};

    fn blobs(n_per: usize, centers: &[f64]) -> PointMatrix {
        let mut m = PointMatrix::new(1);
        for &c in centers {
            for i in 0..n_per {
                m.push(&[c + i as f64 * 1e-3]).unwrap();
            }
        }
        m
    }

    #[test]
    fn returns_k_centers() {
        let points = blobs(100, &[0.0, 50.0, 100.0]);
        let exec = Executor::sequential();
        let centers = afk_mc2(&points, 3, 50, &mut Rng::new(1), &exec).unwrap();
        assert_eq!(centers.len(), 3);
        assert_eq!(centers.dim(), 1);
    }

    #[test]
    fn quality_between_random_and_kmeanspp() {
        // Well-separated blobs: median seed cost of AFK-MC² with a decent
        // chain should land near k-means++, far below Random.
        let points = blobs(80, &[0.0, 1e4, 2e4, 3e4, 4e4]);
        let exec = Executor::sequential();
        let med = |f: &dyn Fn(u64) -> PointMatrix| {
            let costs: Vec<f64> = (0..15).map(|s| potential(&points, &f(s), &exec)).collect();
            kmeans_util::stats::median(&costs).unwrap()
        };
        let rand_cost = med(&|s| random_init(&points, 5, &mut Rng::new(s)).unwrap());
        let mc2_cost = med(&|s| afk_mc2(&points, 5, 100, &mut Rng::new(s), &exec).unwrap());
        let pp_cost = med(&|s| kmeanspp(&points, 5, &mut Rng::new(s), &exec).unwrap());
        assert!(
            mc2_cost < rand_cost / 100.0,
            "AFK-MC² {mc2_cost:.3e} not ≪ Random {rand_cost:.3e}"
        );
        assert!(
            mc2_cost < 100.0 * pp_cost.max(1.0),
            "AFK-MC² {mc2_cost:.3e} far from k-means++ {pp_cost:.3e}"
        );
    }

    #[test]
    fn longer_chains_do_not_hurt() {
        let points = blobs(60, &[0.0, 1e3, 2e3, 3e3]);
        let exec = Executor::sequential();
        let med = |m: usize| {
            let costs: Vec<f64> = (0..15)
                .map(|s| {
                    potential(
                        &points,
                        &afk_mc2(&points, 4, m, &mut Rng::new(s), &exec).unwrap(),
                        &exec,
                    )
                })
                .collect();
            kmeans_util::stats::median(&costs).unwrap()
        };
        let short = med(1);
        let long = med(200);
        assert!(
            long <= short * 1.5 + 1.0,
            "m=200 ({long:.3e}) much worse than m=1 ({short:.3e})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let points = blobs(50, &[0.0, 10.0]);
        let exec = Executor::sequential();
        let a = afk_mc2(&points, 4, 20, &mut Rng::new(9), &exec).unwrap();
        let b = afk_mc2(&points, 4, 20, &mut Rng::new(9), &exec).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_heavy_data_does_not_loop() {
        let points = PointMatrix::from_flat(vec![5.0; 30], 1).unwrap();
        let exec = Executor::sequential();
        let centers = afk_mc2(&points, 3, 10, &mut Rng::new(2), &exec).unwrap();
        assert_eq!(centers.len(), 3);
    }

    #[test]
    fn rejects_bad_parameters() {
        let points = blobs(10, &[0.0]);
        let exec = Executor::sequential();
        assert!(afk_mc2(&points, 2, 0, &mut Rng::new(0), &exec).is_err());
        assert!(afk_mc2(&points, 0, 10, &mut Rng::new(0), &exec).is_err());
        assert!(afk_mc2(&points, 11, 10, &mut Rng::new(0), &exec).is_err());
        assert!(afk_mc2(&PointMatrix::new(1), 1, 10, &mut Rng::new(0), &exec).is_err());
    }

    #[test]
    fn k_equals_one_is_uniform() {
        let points = blobs(20, &[0.0, 9.0]);
        let exec = Executor::sequential();
        let centers = afk_mc2(&points, 1, 5, &mut Rng::new(3), &exec).unwrap();
        assert_eq!(centers.len(), 1);
    }
}
