//! **k-means|| — Algorithm 2 of the paper, the primary contribution.**
//!
//! ```text
//! 1: C ← sample a point uniformly at random from X
//! 2: ψ ← φ_X(C)
//! 3: for O(log ψ) times do
//! 4:     C′ ← sample each point x ∈ X independently with probability
//!            p_x = ℓ·d²(x, C) / φ_X(C)
//! 5:     C ← C ∪ C′
//! 6: end for
//! 7: For x ∈ C, set w_x to be the number of points in X closer to x than
//!    to any other point in C
//! 8: Recluster the weighted points in C into k clusters
//! ```
//!
//! Everything the paper's §5 varies is a configuration knob here:
//!
//! * **Oversampling ℓ** ([`Oversampling`]): the paper sweeps
//!   `ℓ ∈ {0.1k, 0.5k, k, 2k, 10k}`.
//! * **Rounds r** ([`Rounds`]): the paper proves `O(log ψ)` suffices and
//!   shows experimentally that `r = 5` is enough (`r = 15` when
//!   `ℓ = 0.1k`, so that `r·ℓ ≥ k`).
//! * **Sampling mode** ([`SamplingMode`]): line 4's independent Bernoulli
//!   draws, or the exact-ℓ variant of §5.3 ("we begin by sampling exactly
//!   ℓ points from the joint distribution in every round") used for
//!   Figure 5.1.
//! * **Reclustering** ([`Recluster`]): Step 8 — weighted k-means++ (the
//!   paper's choice), optionally refined with weighted Lloyd iterations on
//!   the candidate set (as Spark MLlib later did), or a uniform draw as an
//!   ablation.
//!
//! The implementation maintains `d²(x, C)` *and* each point's nearest
//! candidate id incrementally ([`CostTracker`]), so Step 7 costs one O(n)
//! histogram instead of a full `O(n·|C|·d)` pass — see DESIGN.md §4.

use crate::error::KMeansError;
use crate::init::InitStats;
use kmeans_data::PointMatrix;
use kmeans_par::Executor;
use kmeans_util::Rng;

/// The oversampling factor ℓ of Algorithm 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Oversampling {
    /// `ℓ = factor · k` (the paper's parametrization; it sweeps factors
    /// 0.1–10 and recommends `Θ(k)`).
    Factor(f64),
    /// An absolute expected sample size per round.
    Absolute(f64),
}

impl Oversampling {
    /// Resolves ℓ for a concrete `k`.
    pub fn resolve(&self, k: usize) -> f64 {
        match *self {
            Oversampling::Factor(f) => f * k as f64,
            Oversampling::Absolute(l) => l,
        }
    }
}

/// The number of sampling rounds `r`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rounds {
    /// A fixed round count (the paper's experimental setting; 5 by
    /// default).
    Fixed(usize),
    /// The theoretical `⌈ln ψ⌉` rounds of Theorem 1 (ψ is the potential
    /// after the first center), capped to keep worst cases finite.
    LogPsi {
        /// Upper bound on the number of rounds.
        cap: usize,
    },
}

/// How candidates are drawn each round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplingMode {
    /// Line 4 verbatim: every point independently with probability
    /// `min(1, ℓ·d²/φ)`. The number of candidates per round is random with
    /// expectation ≤ ℓ.
    Bernoulli,
    /// Exactly `round(ℓ)` distinct points per round, drawn without
    /// replacement with probability proportional to `d²` (§5.3's variance
    /// -reduced variant, used for Figure 5.1).
    ExactL,
}

/// What to do when fewer than `k` candidates were selected after all
/// rounds (the paper: with `r·ℓ < k` "we run the risk of having fewer than
/// k centers in the initial set").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopUp {
    /// Keep drawing D²-weighted distinct points until `k` candidates exist
    /// (sensible engineering default — one extra implicit sampling round).
    D2Continue,
    /// Fill the deficit with uniform random points. This reproduces the
    /// paper's Figures 5.2/5.3, where under-sampled configurations
    /// (`r·ℓ < k`) degrade toward `Random`-initialization quality.
    Uniform,
}

/// Step 8: how the weighted candidate set is reduced to `k` centers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Recluster {
    /// Weighted k-means++ (the paper's choice).
    WeightedKMeansPlusPlus,
    /// Weighted k-means++ followed by this many weighted Lloyd iterations
    /// on the candidate set (cheap: the candidate set is tiny).
    Refined {
        /// Number of weighted Lloyd iterations.
        lloyd_iterations: usize,
    },
    /// Uniform draw of `k` candidates — ablation A2; demonstrates that the
    /// weighting matters.
    Uniform,
}

/// Full configuration of Algorithm 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KMeansParallelConfig {
    /// Oversampling factor ℓ.
    pub oversampling: Oversampling,
    /// Round count r.
    pub rounds: Rounds,
    /// Candidate sampling mode.
    pub sampling: SamplingMode,
    /// Reclustering method for Step 8.
    pub recluster: Recluster,
    /// Deficit policy when fewer than `k` candidates were sampled.
    pub topup: TopUp,
}

impl Default for KMeansParallelConfig {
    /// The paper's recommended configuration: `ℓ = 2k`, `r = 5`, Bernoulli
    /// sampling, weighted k-means++ reclustering.
    fn default() -> Self {
        KMeansParallelConfig {
            oversampling: Oversampling::Factor(2.0),
            rounds: Rounds::Fixed(5),
            sampling: SamplingMode::Bernoulli,
            recluster: Recluster::WeightedKMeansPlusPlus,
            topup: TopUp::D2Continue,
        }
    }
}

impl KMeansParallelConfig {
    /// Convenience constructor with the paper's defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `ℓ = factor · k`.
    pub fn oversampling_factor(mut self, factor: f64) -> Self {
        self.oversampling = Oversampling::Factor(factor);
        self
    }

    /// Sets a fixed round count.
    pub fn rounds(mut self, r: usize) -> Self {
        self.rounds = Rounds::Fixed(r);
        self
    }

    /// Selects the sampling mode.
    pub fn sampling(mut self, mode: SamplingMode) -> Self {
        self.sampling = mode;
        self
    }

    /// Selects the reclustering method.
    pub fn recluster(mut self, method: Recluster) -> Self {
        self.recluster = method;
        self
    }

    /// Selects the candidate-deficit policy.
    pub fn topup(mut self, policy: TopUp) -> Self {
        self.topup = policy;
        self
    }

    /// Validates the configuration for a concrete `k`. Public so
    /// distributed frontends running Algorithm 2 over a worker cluster
    /// enforce the exact same contract before any round starts.
    pub fn validate(&self, k: usize) -> Result<(), KMeansError> {
        let l = self.oversampling.resolve(k);
        if !l.is_finite() || l <= 0.0 {
            return Err(KMeansError::InvalidConfig(format!(
                "oversampling must be positive, got ℓ = {l}"
            )));
        }
        match self.rounds {
            Rounds::Fixed(0) => Err(KMeansError::InvalidConfig(
                "rounds must be at least 1".into(),
            )),
            Rounds::LogPsi { cap: 0 } => Err(KMeansError::InvalidConfig(
                "round cap must be at least 1".into(),
            )),
            _ => Ok(()),
        }
    }
}

/// Runs Algorithm 2, returning `k` centers plus accounting.
///
/// Determinism: the outcome is a pure function of
/// `(points, k, config, seed, executor shard size)` — the worker count
/// never changes the result.
///
/// Thin wrapper over the backend-generic
/// [`drive_kmeans_parallel`](crate::driver::drive_kmeans_parallel) on an
/// [`InMemoryBackend`](crate::driver::InMemoryBackend): the round logic
/// exists once, shared bit-for-bit with the chunked and distributed
/// execution modes.
pub fn kmeans_parallel(
    points: &PointMatrix,
    k: usize,
    config: &KMeansParallelConfig,
    seed: u64,
    exec: &Executor,
) -> Result<(PointMatrix, InitStats), KMeansError> {
    let mut backend = crate::driver::InMemoryBackend::new(points, exec);
    crate::driver::drive_kmeans_parallel(&mut backend, k, config, seed)
}

/// The Step 4 acceptance predicate: accept the uniform draw `u` iff
/// `u < ℓ·d²/φ` (with `ℓ·d² > 0` gating whether a draw happens at all).
/// One expression shared by the single-node sampler, the worker-side
/// prescreen, and the coordinator's exact filter, so all three make
/// bit-identical decisions on the same `(u, d², φ)`.
#[inline]
pub fn bernoulli_accept(u: f64, l: f64, d2: f64, phi: f64) -> bool {
    let num = l * d2;
    num > 0.0 && u < num / phi
}

/// Line 4: independent Bernoulli draws with `p = min(1, ℓ·d²/φ)`, shard
/// parallel, deterministic per `(seed, round, shard)`.
///
/// `first_shard` offsets the shard index used for RNG derivation: a
/// distributed worker whose row range starts at global shard `s` passes
/// `s` and draws the exact same per-shard streams the single-node pass
/// would, making the union of all workers' picks bit-identical to the
/// in-memory sample. Single-node callers pass 0. Returned indices are
/// local to `d2` and ascending.
pub fn sample_bernoulli(
    d2: &[f64],
    l: f64,
    phi: f64,
    seed: u64,
    round: usize,
    exec: &Executor,
    first_shard: usize,
) -> Vec<usize> {
    sample_bernoulli_prescreen(d2, l, phi, seed, round, exec, first_shard)
        .into_iter()
        .map(|(i, _)| i)
        .collect()
}

/// [`sample_bernoulli`] with the uniform draws exposed: returns
/// `(index, u)` for every accepted point. RNG consumption is
/// φ-independent — each point with `ℓ·d² > 0` consumes exactly one draw
/// regardless of φ — which is what lets a distributed worker run this
/// against a *lower bound* `φ_lo ≤ φ` (its own local potential) as a
/// prescreen: the true accept set under the global φ is always a subset
/// of the prescreen set (division by a positive denominator is monotone
/// non-increasing), and the coordinator replays [`bernoulli_accept`] on
/// the shipped `(u, d²)` pairs with the exact folded φ to recover it
/// bit for bit.
pub fn sample_bernoulli_prescreen(
    d2: &[f64],
    l: f64,
    phi: f64,
    seed: u64,
    round: usize,
    exec: &Executor,
    first_shard: usize,
) -> Vec<(usize, f64)> {
    let shard_lists = exec.map_shards(d2.len(), |shard, range| {
        let mut rng = Rng::derive(seed, &[31, round as u64, (first_shard + shard) as u64]);
        let mut picked = Vec::new();
        for i in range {
            if l * d2[i] > 0.0 {
                let u = rng.next_f64();
                if bernoulli_accept(u, l, d2[i], phi) {
                    picked.push((i, u));
                }
            }
        }
        picked
    });
    shard_lists.into_iter().flatten().collect()
}

/// The per-shard half of §5.3 exact-ℓ sampling: Efraimidis–Spirakis keys
/// (`ln(u)/d²`), truncated to the shard-local top-`m`, concatenated in
/// shard order. Keys are comparable across shards (and across workers), so
/// [`exact_sample_merge`] over any union of these lists equals the global
/// top-`m`. `first_shard` plays the same role as in [`sample_bernoulli`];
/// returned indices are local to `d2`.
pub fn exact_sample_keys(
    d2: &[f64],
    m: usize,
    seed: u64,
    round: usize,
    exec: &Executor,
    first_shard: usize,
) -> Vec<(f64, usize)> {
    let shard_tops: Vec<Vec<(f64, usize)>> = exec.map_shards(d2.len(), |shard, range| {
        let mut rng = Rng::derive(seed, &[32, round as u64, (first_shard + shard) as u64]);
        let mut keyed: Vec<(f64, usize)> = Vec::new();
        for i in range {
            let w = d2[i];
            // Zero-weight points (already candidates) draw no key; the RNG
            // is still advanced so that shard streams stay aligned even if
            // coverage changes (cheap and keeps reasoning simple).
            let u = rng.next_f64_open();
            if w > 0.0 {
                keyed.push((u.ln() / w, i));
            }
        }
        // Keep only the shard-local top-m (largest keys).
        keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        keyed.truncate(m);
        keyed
    });
    shard_tops.into_iter().flatten().collect()
}

/// The merge half of §5.3 exact-ℓ sampling: global top-`m` of keyed
/// candidates (ties broken by ascending index), returned as ascending
/// indices. The coordinator of a distributed run feeds it the
/// concatenation of every worker's [`exact_sample_keys`] (with indices
/// already translated to global row ids).
pub fn exact_sample_merge(mut entries: Vec<(f64, usize)>, m: usize) -> Vec<usize> {
    entries.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.1.cmp(&b.1))
    });
    entries.truncate(m);
    let mut indices: Vec<usize> = entries.into_iter().map(|(_, i)| i).collect();
    indices.sort_unstable();
    indices
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::potential;
    use kmeans_par::Parallelism;

    fn blobs(n_per: usize, centers: &[f64]) -> PointMatrix {
        let mut m = PointMatrix::new(1);
        for &c in centers {
            for i in 0..n_per {
                m.push(&[c + i as f64 * 1e-3]).unwrap();
            }
        }
        m
    }

    #[test]
    fn returns_k_centers_with_good_coverage() {
        let points = blobs(50, &[0.0, 1e4, 2e4, 3e4, 4e4]);
        let exec = Executor::sequential().with_shard_size(64);
        let config = KMeansParallelConfig::default();
        let mut good = 0;
        for seed in 0..10 {
            let (centers, stats) = kmeans_parallel(&points, 5, &config, seed, &exec).unwrap();
            assert_eq!(centers.len(), 5);
            assert_eq!(stats.rounds, 5);
            assert_eq!(stats.passes, 6);
            assert!(stats.candidates >= 5);
            if potential(&points, &centers, &exec) < 1.0 {
                good += 1;
            }
        }
        assert!(good >= 9, "coverage failed in {}/10 runs", 10 - good);
    }

    #[test]
    fn expected_candidates_close_to_l_times_r() {
        // ℓ = 2k = 20, r = 5 → ~100 candidates (±statistical slack), plus 1.
        let points = blobs(400, &[0.0, 100.0, 200.0, 300.0, 400.0]);
        let exec = Executor::sequential().with_shard_size(128);
        let config = KMeansParallelConfig::default(); // ℓ = 2k, r = 5
        let (_, stats) = kmeans_parallel(&points, 10, &config, 3, &exec).unwrap();
        assert!(
            stats.candidates > 40 && stats.candidates < 180,
            "candidates {} far from ℓ·r = 100",
            stats.candidates
        );
    }

    #[test]
    fn exact_mode_selects_exactly_l_per_round() {
        let points = blobs(500, &[0.0, 50.0, 100.0, 150.0]);
        let exec = Executor::sequential().with_shard_size(256);
        let config = KMeansParallelConfig::default()
            .sampling(SamplingMode::ExactL)
            .oversampling_factor(2.0)
            .rounds(4);
        let (_, stats) = kmeans_parallel(&points, 5, &config, 7, &exec).unwrap();
        // 1 first center + 4 rounds × exactly 10 = 41 candidates.
        assert_eq!(stats.candidates, 41);
    }

    #[test]
    fn identical_across_thread_counts() {
        let points = blobs(200, &[0.0, 77.0, 154.0]);
        let config = KMeansParallelConfig::default();
        let run = |threads: Parallelism| {
            let exec = Executor::new(threads).with_shard_size(64);
            kmeans_parallel(&points, 6, &config, 42, &exec).unwrap()
        };
        let (ref_centers, ref_stats) = run(Parallelism::Sequential);
        for t in [2, 3, 8] {
            let (centers, stats) = run(Parallelism::Threads(t));
            assert_eq!(centers, ref_centers, "threads={t}");
            assert_eq!(stats.candidates, ref_stats.candidates);
        }
    }

    #[test]
    fn exact_mode_identical_across_thread_counts() {
        let points = blobs(200, &[0.0, 77.0, 154.0]);
        let config = KMeansParallelConfig::default().sampling(SamplingMode::ExactL);
        let run = |threads: Parallelism| {
            let exec = Executor::new(threads).with_shard_size(64);
            kmeans_parallel(&points, 6, &config, 42, &exec).unwrap().0
        };
        let reference = run(Parallelism::Sequential);
        assert_eq!(run(Parallelism::Threads(2)), reference);
        assert_eq!(run(Parallelism::Threads(5)), reference);
    }

    #[test]
    fn top_up_guarantees_k_when_rl_below_k() {
        // ℓ = 0.1k and r = 1: expected candidates ≪ k. The top-up must
        // still deliver k centers (the r·ℓ < k risk the paper flags).
        let points = blobs(100, &[0.0, 10.0, 20.0, 30.0]);
        let exec = Executor::sequential();
        let config = KMeansParallelConfig::default()
            .oversampling_factor(0.1)
            .rounds(1);
        let (centers, stats) = kmeans_parallel(&points, 50, &config, 5, &exec).unwrap();
        assert_eq!(centers.len(), 50);
        assert!(stats.candidates >= 50);
    }

    #[test]
    fn uniform_topup_degrades_toward_random() {
        // Ablation for Figures 5.2/5.3: with r·ℓ ≪ k, uniform top-up fills
        // most centers uniformly, so far-out tiny blobs get missed much
        // more often than with D² top-up.
        let mut m = PointMatrix::new(1);
        for i in 0..900 {
            m.push(&[i as f64 * 1e-3]).unwrap();
        }
        // Ten *mutually far* singletons: covering them needs ten separate
        // D² draws, which uniform top-up will not provide.
        for i in 1..=10 {
            m.push(&[i as f64 * 1e6]).unwrap();
        }
        let exec = Executor::sequential();
        let median_cost = |policy: TopUp| {
            let costs: Vec<f64> = (0..11)
                .map(|s| {
                    let config = KMeansParallelConfig::default()
                        .oversampling_factor(0.05)
                        .rounds(1)
                        .topup(policy);
                    let (c, _) = kmeans_parallel(&m, 20, &config, s, &exec).unwrap();
                    potential(&m, &c, &exec)
                })
                .collect();
            kmeans_util::stats::median(&costs).unwrap()
        };
        let d2 = median_cost(TopUp::D2Continue);
        let uniform = median_cost(TopUp::Uniform);
        assert!(
            uniform > 100.0 * d2,
            "uniform top-up {uniform} not ≫ D² top-up {d2}"
        );
    }

    #[test]
    fn duplicate_only_dataset_still_yields_k() {
        let points = PointMatrix::from_flat(vec![3.0; 40], 1).unwrap();
        let exec = Executor::sequential();
        let (centers, _) =
            kmeans_parallel(&points, 4, &KMeansParallelConfig::default(), 1, &exec).unwrap();
        assert_eq!(centers.len(), 4);
    }

    #[test]
    fn k_equals_one() {
        let points = blobs(20, &[0.0, 5.0]);
        let exec = Executor::sequential();
        let (centers, _) =
            kmeans_parallel(&points, 1, &KMeansParallelConfig::default(), 2, &exec).unwrap();
        assert_eq!(centers.len(), 1);
    }

    #[test]
    fn log_psi_rounds_resolve() {
        let points = blobs(100, &[0.0, 1e6]);
        let exec = Executor::sequential();
        let config = KMeansParallelConfig {
            rounds: Rounds::LogPsi { cap: 8 },
            ..Default::default()
        };
        let (_, stats) = kmeans_parallel(&points, 4, &config, 3, &exec).unwrap();
        // ψ ≈ 50 · (1e6)² = 5·10¹³ → ln ≈ 31.5 → capped at 8.
        assert_eq!(stats.rounds, 8);
    }

    #[test]
    fn zero_potential_stops_early() {
        // Two distinct values; after both are candidates φ = 0, so later
        // rounds must not sample anything.
        let points = PointMatrix::from_flat(vec![0.0, 0.0, 9.0, 9.0], 1).unwrap();
        let exec = Executor::sequential();
        let config = KMeansParallelConfig::default().rounds(50);
        let (centers, stats) = kmeans_parallel(&points, 2, &config, 4, &exec).unwrap();
        assert_eq!(centers.len(), 2);
        assert!(stats.rounds < 50, "did not stop early: {}", stats.rounds);
        assert_eq!(potential(&points, &centers, &exec), 0.0);
    }

    #[test]
    fn recluster_variants_all_work() {
        let points = blobs(100, &[0.0, 1e3, 2e3]);
        let exec = Executor::sequential();
        for recluster in [
            Recluster::WeightedKMeansPlusPlus,
            Recluster::Refined {
                lloyd_iterations: 5,
            },
            Recluster::Uniform,
        ] {
            let config = KMeansParallelConfig::default().recluster(recluster);
            let (centers, _) = kmeans_parallel(&points, 3, &config, 6, &exec).unwrap();
            assert_eq!(centers.len(), 3, "{recluster:?}");
        }
    }

    #[test]
    fn weighted_recluster_beats_uniform_recluster() {
        // Ablation A2: with heavy oversampling on skewed data, the weighted
        // recluster should find the three blobs much more reliably than a
        // uniform draw from the candidate set.
        let mut m = PointMatrix::new(1);
        // One huge blob and two tiny far-away blobs.
        for i in 0..500 {
            m.push(&[i as f64 * 1e-3]).unwrap();
        }
        for i in 0..5 {
            m.push(&[1e5 + i as f64 * 1e-3]).unwrap();
            m.push(&[2e5 + i as f64 * 1e-3]).unwrap();
        }
        let exec = Executor::sequential();
        let median = |recluster: Recluster| {
            let costs: Vec<f64> = (0..11)
                .map(|s| {
                    let config = KMeansParallelConfig::default()
                        .oversampling_factor(5.0)
                        .recluster(recluster);
                    let (c, _) = kmeans_parallel(&m, 3, &config, s, &exec).unwrap();
                    potential(&m, &c, &exec)
                })
                .collect();
            kmeans_util::stats::median(&costs).unwrap()
        };
        let weighted = median(Recluster::WeightedKMeansPlusPlus);
        let uniform = median(Recluster::Uniform);
        assert!(
            weighted < uniform,
            "weighted {weighted} not better than uniform {uniform}"
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let points = blobs(10, &[0.0]);
        let exec = Executor::sequential();
        let bad_l = KMeansParallelConfig::default().oversampling_factor(0.0);
        assert!(kmeans_parallel(&points, 2, &bad_l, 0, &exec).is_err());
        let bad_r = KMeansParallelConfig::default().rounds(0);
        assert!(kmeans_parallel(&points, 2, &bad_r, 0, &exec).is_err());
        let bad_abs = KMeansParallelConfig {
            oversampling: Oversampling::Absolute(f64::NAN),
            ..Default::default()
        };
        assert!(kmeans_parallel(&points, 2, &bad_abs, 0, &exec).is_err());
    }

    #[test]
    fn oversampling_resolution() {
        assert_eq!(Oversampling::Factor(2.0).resolve(10), 20.0);
        assert_eq!(Oversampling::Absolute(7.5).resolve(10), 7.5);
    }
}
