//! Seeding algorithms: `Random`, `k-means++` (Algorithm 1), and
//! **`k-means||`** (Algorithm 2 — the paper's contribution).
//!
//! Every initializer returns an [`InitResult`]: exactly `k` centers plus
//! [`InitStats`] with the accounting the paper's tables report — the seed
//! cost ("seed" columns of Tables 1–2), the number of intermediate
//! candidates before reclustering (Table 5), and the number of passes over
//! the data (the quantity that separates k-means|| from k-means++ in
//! Table 4).

mod afkmc2;
mod kmeanspp;
mod parallel;
mod random;

pub use afkmc2::afk_mc2;
pub use kmeanspp::{kmeanspp, kmeanspp_chunked, weighted_kmeanspp};
pub use parallel::{
    bernoulli_accept, exact_sample_keys, exact_sample_merge, kmeans_parallel, sample_bernoulli,
    sample_bernoulli_prescreen, KMeansParallelConfig, Oversampling, Recluster, Rounds,
    SamplingMode, TopUp,
};
pub use random::random_init;

use crate::error::KMeansError;
use kmeans_data::PointMatrix;
use kmeans_par::Executor;
use std::time::Duration;

/// Accounting for one initialization run.
#[derive(Clone, Debug, Default)]
pub struct InitStats {
    /// Sampling rounds executed (k-means||: `r`; k-means++: `k−1`;
    /// Random: 0).
    pub rounds: usize,
    /// Logical full passes over the dataset (the MapReduce-round count of
    /// §3.5): k-means|| uses `1 + r`, k-means++ uses `k`, Random uses 1.
    pub passes: usize,
    /// Intermediate centers selected before any reclustering — the
    /// quantity Table 5 compares against Partition's coreset size. Equals
    /// `k` for methods with no intermediate set.
    pub candidates: usize,
    /// Potential `φ_X(C)` of the returned centers (the "seed" cost of
    /// Tables 1–2). Includes the evaluation pass, not counted in `passes`.
    pub seed_cost: f64,
    /// Wall time of the initialization (excluding seed-cost evaluation).
    pub duration: Duration,
}

/// The outcome of an initialization: exactly `k` centers plus accounting.
#[derive(Clone, Debug)]
pub struct InitResult {
    /// The `k` seed centers.
    pub centers: PointMatrix,
    /// Accounting.
    pub stats: InitStats,
}

/// Initialization method selector for the [`KMeans`](crate::model::KMeans)
/// pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum InitMethod {
    /// `k` distinct points chosen uniformly at random — the classical
    /// baseline.
    Random,
    /// Algorithm 1 of the paper (Arthur & Vassilvitskii 2007): sequential
    /// D²-weighted seeding, `k` passes over the data.
    KMeansPlusPlus,
    /// Algorithm 2 of the paper: parallel oversampling + reclustering.
    KMeansParallel(KMeansParallelConfig),
}

impl Default for InitMethod {
    /// The paper's recommended setting: k-means|| with `ℓ = 2k`, `r = 5`.
    fn default() -> Self {
        InitMethod::KMeansParallel(KMeansParallelConfig::default())
    }
}

impl InitMethod {
    /// Runs the initializer, producing `k` centers and stats.
    ///
    /// The seed fully determines the outcome given the executor's shard
    /// size (worker count never matters). Thin wrapper over the
    /// [`Initializer`](crate::pipeline::Initializer) implementation, kept
    /// for source compatibility with pre-pipeline call sites.
    pub fn run(
        &self,
        points: &PointMatrix,
        k: usize,
        seed: u64,
        exec: &Executor,
    ) -> Result<InitResult, KMeansError> {
        crate::pipeline::Initializer::init(self, points, None, k, seed, exec)
    }
}

impl crate::pipeline::Initializer for InitMethod {
    fn name(&self) -> &'static str {
        match self {
            InitMethod::Random => "random",
            InitMethod::KMeansPlusPlus => "kmeans++",
            InitMethod::KMeansParallel(_) => "kmeans-par",
        }
    }

    fn init(
        &self,
        points: &PointMatrix,
        weights: Option<&[f64]>,
        k: usize,
        seed: u64,
        exec: &Executor,
    ) -> Result<InitResult, KMeansError> {
        match self {
            InitMethod::Random => crate::pipeline::Random.init(points, weights, k, seed, exec),
            InitMethod::KMeansPlusPlus => {
                crate::pipeline::KMeansPlusPlus.init(points, weights, k, seed, exec)
            }
            InitMethod::KMeansParallel(config) => {
                crate::pipeline::KMeansParallel(*config).init(points, weights, k, seed, exec)
            }
        }
    }

    fn init_backend(
        &self,
        backend: &mut dyn crate::driver::RoundBackend,
        k: usize,
        seed: u64,
    ) -> Result<InitResult, KMeansError> {
        match self {
            InitMethod::Random => crate::pipeline::Random.init_backend(backend, k, seed),
            InitMethod::KMeansPlusPlus => {
                crate::pipeline::KMeansPlusPlus.init_backend(backend, k, seed)
            }
            InitMethod::KMeansParallel(config) => {
                crate::pipeline::KMeansParallel(*config).init_backend(backend, k, seed)
            }
        }
    }

    fn supports_backend(&self, kind: crate::driver::BackendKind) -> bool {
        match self {
            InitMethod::Random => {
                crate::pipeline::Initializer::supports_backend(&crate::pipeline::Random, kind)
            }
            InitMethod::KMeansPlusPlus => crate::pipeline::Initializer::supports_backend(
                &crate::pipeline::KMeansPlusPlus,
                kind,
            ),
            InitMethod::KMeansParallel(config) => crate::pipeline::Initializer::supports_backend(
                &crate::pipeline::KMeansParallel(*config),
                kind,
            ),
        }
    }
}

impl From<InitMethod> for Box<dyn crate::pipeline::Initializer> {
    /// The enum stays a thin selector: any variant converts into the
    /// equivalent boxed trait object.
    fn from(method: InitMethod) -> Self {
        Box::new(method)
    }
}

/// Common parameter validation for all initializers: shape checks plus a
/// full finiteness scan (NaN/∞ coordinates would silently poison every
/// distance downstream; one O(n·d) scan up front is cheap relative to any
/// seeding pass and fails loudly instead). Public so out-of-crate
/// [`Initializer`](crate::pipeline::Initializer) implementations (the
/// streaming adapters) enforce the same input contract.
pub fn validate(points: &PointMatrix, k: usize) -> Result<(), KMeansError> {
    if points.is_empty() {
        return Err(KMeansError::EmptyInput);
    }
    if k == 0 || k > points.len() {
        return Err(KMeansError::InvalidK { k, n: points.len() });
    }
    if let Some(flat_idx) = points.as_slice().iter().position(|v| !v.is_finite()) {
        return Err(KMeansError::NonFiniteData {
            point: flat_idx / points.dim(),
            dim: flat_idx % points.dim(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_points(n: usize) -> PointMatrix {
        PointMatrix::from_flat((0..n).map(|i| i as f64).collect(), 1).unwrap()
    }

    #[test]
    fn all_methods_return_k_centers_and_stats() {
        let points = line_points(300);
        let exec = Executor::sequential().with_shard_size(64);
        for method in [
            InitMethod::Random,
            InitMethod::KMeansPlusPlus,
            InitMethod::KMeansParallel(KMeansParallelConfig::default()),
        ] {
            let result = method.run(&points, 10, 7, &exec).unwrap();
            assert_eq!(result.centers.len(), 10, "{method:?}");
            assert_eq!(result.centers.dim(), 1);
            assert!(result.stats.seed_cost > 0.0, "{method:?}");
            assert!(result.stats.candidates >= 10, "{method:?}");
            assert!(result.stats.passes >= 1);
        }
    }

    #[test]
    fn pass_accounting_matches_paper_narrative() {
        let points = line_points(200);
        let exec = Executor::sequential();
        let r = InitMethod::Random.run(&points, 8, 1, &exec).unwrap();
        assert_eq!(r.stats.passes, 1);
        let pp = InitMethod::KMeansPlusPlus
            .run(&points, 8, 1, &exec)
            .unwrap();
        assert_eq!(pp.stats.passes, 8); // k passes
        let par = InitMethod::default().run(&points, 8, 1, &exec).unwrap();
        // 1 initial pass + r rounds (default 5).
        assert_eq!(par.stats.passes, 6);
        assert!(par.stats.passes < pp.stats.passes);
    }

    #[test]
    fn invalid_k_is_rejected() {
        let points = line_points(5);
        let exec = Executor::sequential();
        for method in [InitMethod::Random, InitMethod::KMeansPlusPlus] {
            assert!(matches!(
                method.run(&points, 0, 0, &exec),
                Err(KMeansError::InvalidK { .. })
            ));
            assert!(matches!(
                method.run(&points, 6, 0, &exec),
                Err(KMeansError::InvalidK { .. })
            ));
        }
        assert!(matches!(
            InitMethod::default().run(&PointMatrix::new(2), 1, 0, &exec),
            Err(KMeansError::EmptyInput)
        ));
    }

    #[test]
    fn non_finite_data_is_rejected() {
        let exec = Executor::sequential();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let points = PointMatrix::from_flat(vec![0.0, 1.0, 2.0, bad, 4.0, 5.0], 2).unwrap();
            let err = InitMethod::default().run(&points, 2, 0, &exec).unwrap_err();
            assert_eq!(
                err,
                KMeansError::NonFiniteData { point: 1, dim: 1 },
                "value {bad}"
            );
        }
    }

    #[test]
    fn seeding_quality_ordering_on_separated_data() {
        // Three tight blobs, far apart, k = 3: D²-seeding must place one
        // center in each blob, while Random frequently does not. We check
        // the *median* seed cost over several seeds.
        let mut m = PointMatrix::new(1);
        for blob in 0..3 {
            for i in 0..50 {
                m.push(&[blob as f64 * 1000.0 + i as f64 * 0.01]).unwrap();
            }
        }
        let exec = Executor::sequential();
        let median_cost = |method: &InitMethod| {
            let costs: Vec<f64> = (0..11)
                .map(|s| method.run(&m, 3, s, &exec).unwrap().stats.seed_cost)
                .collect();
            kmeans_util::stats::median(&costs).unwrap()
        };
        let random = median_cost(&InitMethod::Random);
        let pp = median_cost(&InitMethod::KMeansPlusPlus);
        let par = median_cost(&InitMethod::default());
        // A blob missed by Random costs ~50 · 1000² = 5·10⁷; D² methods
        // land all three blobs, leaving only within-blob spread (≤ ~13).
        assert!(pp < 50.0, "k-means++ seed cost {pp}");
        assert!(par < 50.0, "k-means|| seed cost {par}");
        assert!(random > 1e5, "random seed cost {random}");
    }
}
