//! k-means++ seeding (Algorithm 1 of the paper; Arthur & Vassilvitskii,
//! SODA 2007), plain and weighted.
//!
//! The plain form is the paper's "true baseline": it gives an
//! `O(log k)`-approximation in expectation but needs `k` sequential passes
//! because each draw conditions on all previous centers. The weighted form
//! is Step 8 of Algorithm 2 — the paper reclusters the `O(ℓ·r)` weighted
//! candidates with exactly this procedure ("we use k-means++ for
//! reclustering in Step 8 of k-means||", §4.2) — and is also the final
//! stage of the `Partition` baseline.

use crate::cost::CostTracker;
use crate::error::KMeansError;
use kmeans_data::PointMatrix;
use kmeans_par::Executor;
use kmeans_util::sampling::weighted_pick;
use kmeans_util::Rng;

/// Algorithm 1: D²-weighted sequential seeding.
///
/// The first center is uniform; each subsequent center is drawn with
/// probability `d²(x, C) / φ_X(C)`. The `d²` array is maintained
/// incrementally (one `O(n·d)` update pass per center — the run is
/// `O(n·k·d)` total, matching the paper's complexity discussion), with the
/// distance passes executed on the shard executor.
///
/// If the dataset has fewer than `k` *distinct* points, the remaining
/// centers are drawn uniformly from the not-yet-chosen indices (duplicate
/// center values; Lloyd's empty-cluster repair resolves them downstream).
pub fn kmeanspp(
    points: &PointMatrix,
    k: usize,
    rng: &mut Rng,
    exec: &Executor,
) -> Result<PointMatrix, KMeansError> {
    super::validate(points, k)?;
    let n = points.len();
    let first = rng.range_usize(n);
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    chosen.push(first);
    let mut centers = points.select(&chosen);
    if k == 1 {
        return Ok(centers);
    }
    let mut tracker = CostTracker::new(points, &centers, exec);
    while centers.len() < k {
        let next = match weighted_pick(tracker.d2(), tracker.potential(), rng) {
            Some(idx) => idx,
            // Degenerate: every remaining point coincides with a chosen
            // center. Fall back to uniform among unchosen indices.
            None => match uniform_unchosen(n, &chosen, rng) {
                Some(idx) => idx,
                None => break, // k > number of points: impossible post-validate
            },
        };
        chosen.push(next);
        let from = centers.len();
        centers
            .push(points.row(next))
            .expect("center dim matches points dim");
        tracker.update(&centers, from, exec);
    }
    Ok(centers)
}

/// Weighted k-means++: draws the first center with probability `∝ w_x` and
/// each subsequent one with probability `∝ w_x · d²(x, C)`.
///
/// Sequential by design — in this workspace it only ever runs on candidate
/// sets (size `O(ℓ·r)`), never on the full data, mirroring the paper's
/// observation that "since the number of centers is small they can all be
/// assigned to a single machine" (§3.3).
///
/// Zero-weight points are never selected (unless *all* weights are zero,
/// in which case selection degenerates to uniform).
pub fn weighted_kmeanspp(
    points: &PointMatrix,
    weights: &[f64],
    k: usize,
    rng: &mut Rng,
) -> Result<PointMatrix, KMeansError> {
    super::validate(points, k)?;
    crate::pipeline::validate_weights(points, Some(weights))?;
    let n = points.len();
    let total_w: f64 = weights.iter().sum();
    let first = match weighted_pick(weights, total_w, rng) {
        Some(idx) => idx,
        None => rng.range_usize(n), // all-zero weights: uniform
    };
    let mut chosen = vec![first];
    let mut centers = points.select(&chosen);
    if k == 1 {
        return Ok(centers);
    }
    // Sequential d² maintenance (candidate sets are small).
    let mut d2: Vec<f64> = points
        .rows()
        .map(|row| crate::distance::sq_dist(row, centers.row(0)))
        .collect();
    let mut scores: Vec<f64> = d2.iter().zip(weights).map(|(d, w)| d * w).collect();
    while centers.len() < k {
        let total: f64 = scores.iter().sum();
        let next = match weighted_pick(&scores, total, rng) {
            Some(idx) => idx,
            None => match uniform_unchosen(n, &chosen, rng) {
                Some(idx) => idx,
                None => break,
            },
        };
        chosen.push(next);
        centers
            .push(points.row(next))
            .expect("center dim matches points dim");
        let new_center = points.row(next).to_vec();
        for (i, row) in points.rows().enumerate() {
            let d = crate::distance::sq_dist_bounded(row, &new_center, d2[i]);
            if d < d2[i] {
                d2[i] = d;
                scores[i] = d * weights[i];
            }
        }
    }
    Ok(centers)
}

/// Algorithm 1 over a [`ChunkedSource`](kmeans_data::ChunkedSource) —
/// the out-of-core form of [`kmeanspp`], bit-identical to it on the same
/// data, RNG state, and executor for any block size.
///
/// Cost structure is unchanged (`k` passes total — the paper's reason to
/// replace this algorithm with k-means||): the `d²` array stays resident
/// and every center draw reads only it; each accepted center costs one
/// block fetch (gather) plus one update scan.
pub fn kmeanspp_chunked(
    source: &dyn kmeans_data::ChunkedSource,
    k: usize,
    rng: &mut Rng,
    exec: &Executor,
) -> Result<PointMatrix, KMeansError> {
    use crate::chunked::{gather_rows, ChunkedCostTracker};

    crate::chunked::validate_source(source, k)?;
    let n = source.len();
    let first = rng.range_usize(n);
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    chosen.push(first);
    let mut buf = source.block_buffer();
    let mut centers = gather_rows(source, &[first], &mut buf)?;
    if k == 1 {
        // Match the in-memory early return — including its error
        // contract: `validate` scans the whole dataset for non-finite
        // coordinates, so pay the same one full pass here (with k > 1 the
        // tracker's first pass does it for free).
        let mut check = source.block_buffer();
        crate::chunked::for_each_block(source, &mut check, |_b, start, block| {
            crate::chunked::check_block_finite(block, start)
        })?;
        return Ok(centers);
    }
    let mut tracker = ChunkedCostTracker::new(source, &centers, exec)?;
    while centers.len() < k {
        let next = match weighted_pick(tracker.d2(), tracker.potential(), rng) {
            Some(idx) => idx,
            None => match uniform_unchosen(n, &chosen, rng) {
                Some(idx) => idx,
                None => break,
            },
        };
        chosen.push(next);
        let from = centers.len();
        let row = gather_rows(source, &[next], &mut buf)?;
        centers.extend_from(&row).expect("center dim matches");
        tracker.update(source, &centers, from, exec)?;
    }
    Ok(centers)
}

/// Uniform draw among indices not in `chosen` (linear scan; only reached in
/// degenerate duplicate-heavy inputs). Returns `None` if all indices are
/// already chosen.
fn uniform_unchosen(n: usize, chosen: &[usize], rng: &mut Rng) -> Option<usize> {
    let remaining = n - chosen.len();
    if remaining == 0 {
        return None;
    }
    let mut target = rng.range_usize(remaining);
    let mut taken: Vec<usize> = chosen.to_vec();
    taken.sort_unstable();
    for i in 0..n {
        if taken.binary_search(&i).is_ok() {
            continue;
        }
        if target == 0 {
            return Some(i);
        }
        target -= 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::potential;

    fn blobs(n_per: usize, centers: &[f64]) -> PointMatrix {
        let mut m = PointMatrix::new(1);
        for &c in centers {
            for i in 0..n_per {
                m.push(&[c + i as f64 * 1e-3]).unwrap();
            }
        }
        m
    }

    #[test]
    fn covers_well_separated_blobs() {
        let points = blobs(40, &[0.0, 1e4, 2e4, 3e4]);
        let exec = Executor::sequential();
        // With D² seeding, all 4 blobs must be hit in nearly every run.
        let mut hits = 0;
        for seed in 0..20 {
            let centers = kmeanspp(&points, 4, &mut Rng::new(seed), &exec).unwrap();
            let phi = potential(&points, &centers, &exec);
            if phi < 1.0 {
                hits += 1;
            }
        }
        assert!(hits >= 19, "blob coverage failed in {}/20 runs", 20 - hits);
    }

    #[test]
    fn k_equals_one_is_a_uniform_draw() {
        let points = blobs(10, &[0.0, 100.0]);
        let exec = Executor::sequential();
        let centers = kmeanspp(&points, 1, &mut Rng::new(1), &exec).unwrap();
        assert_eq!(centers.len(), 1);
    }

    #[test]
    fn k_equals_n_selects_everything() {
        let points = blobs(3, &[0.0, 10.0]); // 6 distinct points
        let exec = Executor::sequential();
        let centers = kmeanspp(&points, 6, &mut Rng::new(2), &exec).unwrap();
        assert_eq!(centers.len(), 6);
        let phi = potential(&points, &centers, &exec);
        assert_eq!(phi, 0.0);
    }

    #[test]
    fn duplicate_points_fall_back_to_uniform() {
        // 5 copies of the same point; k = 3 must still return 3 centers.
        let points = PointMatrix::from_flat(vec![7.0; 5], 1).unwrap();
        let exec = Executor::sequential();
        let centers = kmeanspp(&points, 3, &mut Rng::new(3), &exec).unwrap();
        assert_eq!(centers.len(), 3);
        for c in centers.rows() {
            assert_eq!(c[0], 7.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let points = blobs(30, &[0.0, 50.0, 100.0]);
        let exec = Executor::sequential();
        let a = kmeanspp(&points, 3, &mut Rng::new(11), &exec).unwrap();
        let b = kmeanspp(&points, 3, &mut Rng::new(11), &exec).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_first_draw_respects_weights() {
        // Two points; weight 0 must never be the (only) center.
        let points = PointMatrix::from_flat(vec![0.0, 1.0], 1).unwrap();
        for seed in 0..20 {
            let c = weighted_kmeanspp(&points, &[0.0, 5.0], 1, &mut Rng::new(seed)).unwrap();
            assert_eq!(c.row(0)[0], 1.0, "zero-weight point selected");
        }
    }

    #[test]
    fn weighted_recluster_recovers_heavy_candidates() {
        // Candidate-set shape: many low-weight noise points plus 3 heavy
        // ones; the heavy ones should be chosen as centers nearly always.
        let mut m = PointMatrix::new(1);
        let mut w = Vec::new();
        for heavy in [0.0, 1000.0, 2000.0] {
            m.push(&[heavy]).unwrap();
            w.push(500.0);
        }
        for i in 0..30 {
            m.push(&[i as f64 * 66.0 + 13.0]).unwrap();
            w.push(0.01);
        }
        let mut recovered = 0;
        for seed in 0..20 {
            let centers = weighted_kmeanspp(&m, &w, 3, &mut Rng::new(seed)).unwrap();
            let mut got: Vec<f64> = centers.rows().map(|r| r[0]).collect();
            got.sort_by(|a, b| a.partial_cmp(b).unwrap());
            // Each heavy point must have a center within 70 units.
            if [0.0, 1000.0, 2000.0]
                .iter()
                .all(|h| got.iter().any(|g| (g - h).abs() < 70.0))
            {
                recovered += 1;
            }
        }
        assert!(recovered >= 18, "heavy candidates recovered {recovered}/20");
    }

    #[test]
    fn weighted_rejects_bad_weights() {
        let points = PointMatrix::from_flat(vec![0.0, 1.0], 1).unwrap();
        assert!(weighted_kmeanspp(&points, &[1.0], 1, &mut Rng::new(0)).is_err());
        assert!(weighted_kmeanspp(&points, &[-1.0, 1.0], 1, &mut Rng::new(0)).is_err());
        assert!(weighted_kmeanspp(&points, &[f64::NAN, 1.0], 1, &mut Rng::new(0)).is_err());
    }

    #[test]
    fn all_zero_weights_degenerate_to_uniform() {
        let points = PointMatrix::from_flat(vec![0.0, 1.0, 2.0], 1).unwrap();
        let centers = weighted_kmeanspp(&points, &[0.0; 3], 2, &mut Rng::new(4)).unwrap();
        assert_eq!(centers.len(), 2);
    }

    #[test]
    fn uniform_unchosen_skips_taken() {
        let mut rng = Rng::new(5);
        for _ in 0..50 {
            let got = uniform_unchosen(5, &[0, 2, 4], &mut rng).unwrap();
            assert!(got == 1 || got == 3);
        }
        assert_eq!(uniform_unchosen(2, &[0, 1], &mut rng), None);
    }
}
