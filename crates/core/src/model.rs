//! The end-to-end pipeline: a pluggable [`Initializer`] followed by a
//! pluggable [`Refiner`], behind a builder API.
//!
//! ```
//! use kmeans_core::model::KMeans;
//! use kmeans_data::synth::GaussMixture;
//!
//! let synth = GaussMixture::new(10).points(2_000).generate(1).unwrap();
//! let model = KMeans::params(10)
//!     .seed(42)
//!     .fit(synth.dataset.points())
//!     .unwrap();
//! assert_eq!(model.centers().len(), 10);
//! assert!(model.cost() > 0.0);
//! ```
//!
//! Any seeder composes with any refiner:
//!
//! ```
//! use kmeans_core::model::KMeans;
//! use kmeans_core::pipeline::{AfkMc2, HamerlyLloyd};
//! use kmeans_data::synth::GaussMixture;
//!
//! let synth = GaussMixture::new(5).points(500).generate(2).unwrap();
//! let model = KMeans::params(5)
//!     .init(AfkMc2::default())
//!     .refine(HamerlyLloyd::default())
//!     .seed(7)
//!     .fit(synth.dataset.points())
//!     .unwrap();
//! assert!(model.converged());
//! assert!(model.distance_computations() > 0);
//! ```

use crate::driver::{BackendKind, ChunkedBackend, InMemoryBackend, RoundBackend};
use crate::error::KMeansError;
use crate::init::{InitMethod, InitStats};
use crate::kernel::{AssignKernel, KernelStats};
use crate::lloyd::{IterationStats, LloydConfig};
use crate::pipeline::{reject_backend, validate_weights, Initializer, Lloyd, Refiner};
use crate::record::RecordingBackend;
use kmeans_data::{ChunkedSource, ModelRecord, PointMatrix};
use kmeans_obs::{arg_str, Recorder};
use kmeans_par::{Executor, Parallelism};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Builder for a k-means run (defaults follow the paper's recommendation:
/// k-means|| seeding with `ℓ = 2k`, `r = 5`, then Lloyd to stability).
#[derive(Clone, Debug)]
pub struct KMeans {
    k: usize,
    init: Arc<dyn Initializer>,
    refiner: Option<Arc<dyn Refiner>>,
    lloyd: LloydConfig,
    lloyd_tuned: bool,
    weights: Option<Vec<f64>>,
    source: Option<Arc<dyn ChunkedSource>>,
    seed: u64,
    parallelism: Parallelism,
    shard_size: Option<usize>,
    recorder: Recorder,
}

impl KMeans {
    /// Starts a builder for `k` clusters.
    pub fn params(k: usize) -> Self {
        KMeans {
            k,
            init: Arc::new(InitMethod::default()),
            refiner: None,
            lloyd: LloydConfig::default(),
            lloyd_tuned: false,
            weights: None,
            source: None,
            seed: 0,
            parallelism: Parallelism::Auto,
            shard_size: None,
            recorder: Recorder::disabled(),
        }
    }

    /// Selects the initialization stage. Accepts any [`Initializer`] —
    /// the [`InitMethod`] enum variants, the `kmeans_core::pipeline`
    /// seeders, or the streaming adapters from `kmeans-streaming`.
    pub fn init<I: Initializer + 'static>(mut self, init: I) -> Self {
        self.init = Arc::new(init);
        self
    }

    /// Selects the refinement stage (default: Lloyd to stability).
    pub fn refine<R: Refiner + 'static>(mut self, refiner: R) -> Self {
        self.refiner = Some(Arc::new(refiner));
        self
    }

    /// Sets per-point weights, plumbed through both stages. Each point
    /// counts as `w` copies of itself in sampling probabilities, centroid
    /// updates, and the reported cost.
    ///
    /// Note: the weighted kernels currently run sequentially — weighted
    /// workloads in this workspace are candidate-set sized (Step 8 of
    /// k-means||, coreset reclustering), so `parallelism` affects only
    /// the unweighted stages of a weighted fit.
    pub fn weights(mut self, weights: &[f64]) -> Self {
        self.weights = Some(weights.to_vec());
        self
    }

    /// Sets the out-of-core data source consumed by
    /// [`KMeans::fit_chunked`]. The in-memory [`KMeans::fit`] ignores it
    /// (its explicit `points` argument is the data).
    ///
    /// ```
    /// use kmeans_core::model::KMeans;
    /// use kmeans_data::InMemorySource;
    /// use kmeans_data::synth::GaussMixture;
    ///
    /// let synth = GaussMixture::new(8).points(1_000).generate(3).unwrap();
    /// let points = synth.dataset.points().clone();
    /// // In-memory and chunked fits agree bit-for-bit on the same seed.
    /// let mem = KMeans::params(8).seed(5).fit(&points).unwrap();
    /// let chunked = KMeans::params(8)
    ///     .seed(5)
    ///     .data_source(InMemorySource::new(points, 128).unwrap())
    ///     .fit_chunked()
    ///     .unwrap();
    /// assert_eq!(mem.centers(), chunked.centers());
    /// assert_eq!(mem.cost().to_bits(), chunked.cost().to_bits());
    /// ```
    pub fn data_source<S: ChunkedSource + 'static>(mut self, source: S) -> Self {
        self.source = Some(Arc::new(source));
        self
    }

    /// Like [`KMeans::data_source`], but shares an existing handle — for
    /// callers that want to inspect the source after the fit (e.g. the
    /// CLI's peak-residency report).
    pub fn data_source_shared(mut self, source: Arc<dyn ChunkedSource>) -> Self {
        self.source = Some(source);
        self
    }

    /// Caps the number of refinement iterations of the **default Lloyd
    /// refiner**. Combining this with an explicit [`KMeans::refine`] is
    /// rejected at [`KMeans::fit`] time — a custom refiner carries its
    /// own configuration.
    pub fn max_iterations(mut self, max: usize) -> Self {
        self.lloyd.max_iterations = max;
        self.lloyd_tuned = true;
        self
    }

    /// Sets the relative-improvement stopping tolerance of the default
    /// Lloyd refiner (0 = run to assignment stability). Same conflict
    /// rule as [`KMeans::max_iterations`].
    pub fn tol(mut self, tol: f64) -> Self {
        self.lloyd.tol = tol;
        self.lloyd_tuned = true;
        self
    }

    /// Sets the random seed. Runs are bit-reproducible per seed (and
    /// independent of the worker count).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the execution parallelism.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Overrides the logical shard size (part of the reproducibility key).
    pub fn shard_size(mut self, shard_size: usize) -> Self {
        self.shard_size = Some(shard_size);
        self
    }

    /// Attaches a flight recorder. With an enabled recorder every fit —
    /// in-memory, chunked, or distributed — records one span per round
    /// primitive (round kind, wall time, wire bytes, kernel counters);
    /// with the default disabled recorder the instrumentation costs one
    /// branch per call. Recording never changes results: an instrumented
    /// fit is bit-identical to an uninstrumented one (pinned by
    /// `tests/obs_parity.rs`).
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The configured flight recorder (disabled by default).
    pub fn configured_recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Builds the executor this configuration implies. Public for
    /// alternative fit frontends (the distributed coordinator), which need
    /// the shard size — part of every run's reproducibility key.
    pub fn executor(&self) -> Executor {
        let exec = Executor::new(self.parallelism);
        match self.shard_size {
            Some(s) => exec.with_shard_size(s),
            None => exec,
        }
    }

    /// The configured number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The configured random seed.
    pub fn configured_seed(&self) -> u64 {
        self.seed
    }

    /// Whether per-point weights were configured (weighted fits exist on
    /// the in-memory path only; chunked and distributed frontends reject).
    pub fn has_weights(&self) -> bool {
        self.weights.is_some()
    }

    /// The configured initialization stage.
    pub fn initializer(&self) -> &Arc<dyn Initializer> {
        &self.init
    }

    /// Resolves the refinement stage, rejecting Lloyd knobs combined with
    /// a custom refiner (silently ignoring them would leave e.g. an
    /// "iteration-capped" study uncapped; fail loudly instead). Public for
    /// alternative fit frontends, which must apply the same conflict rule.
    pub fn resolve_refiner(&self) -> Result<Arc<dyn Refiner>, KMeansError> {
        match &self.refiner {
            Some(r) => {
                if self.lloyd_tuned {
                    return Err(KMeansError::InvalidConfig(
                        "max_iterations/tol configure the default Lloyd refiner; \
                         pass a configured refiner to .refine(...) instead"
                            .into(),
                    ));
                }
                Ok(Arc::clone(r))
            }
            None => Ok(Arc::new(Lloyd(self.lloyd))),
        }
    }

    /// Runs initialization + refinement on `points`.
    pub fn fit(&self, points: &PointMatrix) -> Result<KMeansModel, KMeansError> {
        let exec = self.executor();
        let weights = self.weights.as_deref();
        validate_weights(points, weights)?;
        let refiner = self.resolve_refiner()?;
        // An enabled recorder routes through the backend-generic round
        // drivers — bit-identical to the direct path (the driver layer's
        // pinned parity contract) — so every round primitive gets its
        // own span. Stages without an in-memory round realization
        // (AFK-MC², Hamerly, k-means++) and weighted fits stay on the
        // direct path and record coarse per-stage spans instead.
        if self.recorder.is_enabled()
            && weights.is_none()
            && self.init.supports_backend(BackendKind::InMemory)
            && refiner.supports_backend(BackendKind::InMemory)
        {
            let mut backend = InMemoryBackend::new(points, &exec);
            return self.fit_round_backend(&mut backend);
        }
        let start = self.recorder.start();
        let init = self.init.init(points, weights, self.k, self.seed, &exec)?;
        self.recorder.span(start, "stage:init", "fit", || {
            vec![arg_str("stage", self.init.name())]
        });
        let start = self.recorder.start();
        let result = refiner.refine(points, weights, &init.centers, self.seed, &exec)?;
        self.recorder.span(start, "stage:refine", "fit", || {
            vec![arg_str("stage", refiner.name())]
        });
        Ok(KMeansModel {
            centers: result.centers,
            labels: result.labels,
            cost: result.cost,
            init_stats: init.stats,
            iterations: result.iterations,
            converged: result.converged,
            history: result.history,
            distance_computations: result.distance_computations,
            pruned_by_norm_bound: result.pruned_by_norm_bound,
            init_name: self.init.name(),
            refiner_name: refiner.name(),
            executor: exec,
        })
    }

    /// Runs initialization + refinement **out of core** on the configured
    /// [`KMeans::data_source`]: every stage streams the source block by
    /// block (one scan per k-means|| round / Lloyd iteration), so the
    /// feature payload never has to fit in memory. Results are
    /// bit-identical to [`KMeans::fit`] on the same data, seed, and
    /// executor for every stage with a chunked formulation; stages without
    /// one (AFK-MC², Hamerly) and weighted fits are rejected with a typed
    /// error.
    pub fn fit_chunked(&self) -> Result<KMeansModel, KMeansError> {
        let source = self.source.clone().ok_or_else(|| {
            KMeansError::InvalidConfig(
                "no data source configured; call .data_source(...) before .fit_chunked()".into(),
            )
        })?;
        if self.weights.is_some() {
            return Err(KMeansError::InvalidConfig(
                "chunked fits do not support weighted input".into(),
            ));
        }
        let exec = self.executor();
        let refiner = self.resolve_refiner()?;
        // Same routing rule as `fit`: an enabled recorder runs the fit
        // through the backend-generic drivers (bit-identical) so every
        // block scan records a per-primitive span.
        if self.recorder.is_enabled()
            && self.init.supports_backend(BackendKind::Chunked)
            && refiner.supports_backend(BackendKind::Chunked)
        {
            let mut backend = ChunkedBackend::new(source.as_ref(), &exec);
            return self.fit_round_backend(&mut backend);
        }
        let start = self.recorder.start();
        let init = self
            .init
            .init_chunked(source.as_ref(), self.k, self.seed, &exec)?;
        self.recorder.span(start, "stage:init", "fit", || {
            vec![arg_str("stage", self.init.name())]
        });
        let start = self.recorder.start();
        let result = refiner.refine_chunked(source.as_ref(), &init.centers, self.seed, &exec)?;
        self.recorder.span(start, "stage:refine", "fit", || {
            vec![arg_str("stage", refiner.name())]
        });
        Ok(KMeansModel {
            centers: result.centers,
            labels: result.labels,
            cost: result.cost,
            init_stats: init.stats,
            iterations: result.iterations,
            converged: result.converged,
            history: result.history,
            distance_computations: result.distance_computations,
            pruned_by_norm_bound: result.pruned_by_norm_bound,
            init_name: self.init.name(),
            refiner_name: refiner.name(),
            executor: exec,
        })
    }

    /// Runs the standard init → refine pipeline over an explicit
    /// [`RoundBackend`] — the shared fit engine behind [`KMeans::fit`] /
    /// [`KMeans::fit_chunked`] when instrumented, and behind
    /// `kmeans-cluster`'s distributed fit entry points.
    ///
    /// Both stages are capability-checked against the backend's
    /// [`BackendKind`] up front and rejected with the mode's typed error
    /// when they have no round formulation; weighted input is rejected
    /// (weights exist only on the in-memory direct path). When the
    /// configured [`Recorder`] is enabled the backend is wrapped in a
    /// [`RecordingBackend`] so every round primitive records a span; the
    /// wrapper only observes, so results are bit-identical either way.
    pub fn fit_round_backend(
        &self,
        backend: &mut dyn RoundBackend,
    ) -> Result<KMeansModel, KMeansError> {
        let kind = backend.kind();
        if self.weights.is_some() {
            return Err(KMeansError::InvalidConfig(format!(
                "{} fits do not support weighted input",
                kind.name()
            )));
        }
        let refiner = self.resolve_refiner()?;
        if !self.init.supports_backend(kind) {
            return Err(reject_backend(self.init.name(), kind));
        }
        if !refiner.supports_backend(kind) {
            return Err(reject_backend(refiner.name(), kind));
        }
        let exec = self.executor();
        let mut recorded;
        let backend: &mut dyn RoundBackend = if self.recorder.is_enabled() {
            recorded = RecordingBackend::new(backend, self.recorder.clone());
            &mut recorded
        } else {
            backend
        };
        let start = self.recorder.start();
        let init = self.init.init_backend(backend, self.k, self.seed)?;
        self.recorder.span(start, "stage:init", "fit", || {
            vec![arg_str("stage", self.init.name())]
        });
        let start = self.recorder.start();
        let result = refiner.refine_backend(backend, &init.centers, self.seed)?;
        self.recorder.span(start, "stage:refine", "fit", || {
            vec![arg_str("stage", refiner.name())]
        });
        Ok(KMeansModel::from_parts(ModelParts {
            centers: result.centers,
            labels: result.labels,
            cost: result.cost,
            init_stats: init.stats,
            iterations: result.iterations,
            converged: result.converged,
            history: result.history,
            distance_computations: result.distance_computations,
            pruned_by_norm_bound: result.pruned_by_norm_bound,
            init_name: self.init.name(),
            refiner_name: refiner.name(),
            executor: exec,
        }))
    }
}

/// A fitted k-means model.
#[derive(Clone, Debug)]
pub struct KMeansModel {
    centers: PointMatrix,
    labels: Vec<u32>,
    cost: f64,
    init_stats: InitStats,
    iterations: usize,
    converged: bool,
    history: Vec<IterationStats>,
    distance_computations: u64,
    pruned_by_norm_bound: u64,
    init_name: &'static str,
    refiner_name: &'static str,
    executor: Executor,
}

/// The raw fields of a [`KMeansModel`], for alternative fit frontends
/// (the distributed coordinator in `kmeans-cluster`) that run the same
/// init→refine pipeline outside [`KMeans::fit`] but must hand back the
/// standard model type.
#[derive(Clone, Debug)]
pub struct ModelParts {
    /// Final centers (`k × d`).
    pub centers: PointMatrix,
    /// Final assignment, consistent with `centers`.
    pub labels: Vec<u32>,
    /// Final potential.
    pub cost: f64,
    /// Seeding accounting.
    pub init_stats: InitStats,
    /// Refinement iterations executed.
    pub iterations: usize,
    /// Whether the refiner converged.
    pub converged: bool,
    /// Per-iteration refinement history (may be empty).
    pub history: Vec<IterationStats>,
    /// Point-to-center distance evaluations spent by the refiner.
    pub distance_computations: u64,
    /// Candidates the assignment kernel skipped via its norm/coordinate
    /// lower bounds — measured on every execution mode (distributed
    /// workers ship their counters in the partials frames).
    pub pruned_by_norm_bound: u64,
    /// Stable name of the initializer.
    pub init_name: &'static str,
    /// Stable name of the refiner.
    pub refiner_name: &'static str,
    /// Executor `predict`/`cost_of` will reuse.
    pub executor: Executor,
}

impl KMeansModel {
    /// Assembles a model from explicitly computed parts (see
    /// [`ModelParts`]). The caller is responsible for the fields being
    /// mutually consistent — `labels`/`cost` must describe `centers`.
    pub fn from_parts(parts: ModelParts) -> Self {
        KMeansModel {
            centers: parts.centers,
            labels: parts.labels,
            cost: parts.cost,
            init_stats: parts.init_stats,
            iterations: parts.iterations,
            converged: parts.converged,
            history: parts.history,
            distance_computations: parts.distance_computations,
            pruned_by_norm_bound: parts.pruned_by_norm_bound,
            init_name: parts.init_name,
            refiner_name: parts.refiner_name,
            executor: parts.executor,
        }
    }

    /// The fitted centers (`k × d`).
    pub fn centers(&self) -> &PointMatrix {
        &self.centers
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centers.len()
    }

    /// Training-set assignment.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Final training potential (the "final" columns of Tables 1–2).
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Seeding accounting (seed cost, candidate count, passes).
    pub fn init_stats(&self) -> &InitStats {
        &self.init_stats
    }

    /// Refinement iterations executed (the Table 6 quantity).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the refiner converged before its iteration cap.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Per-iteration history (where the refiner tracks one).
    pub fn history(&self) -> &[IterationStats] {
        &self.history
    }

    /// Point-to-center distance evaluations the refiner spent (measured
    /// for Hamerly, analytic for the rest) — the pruning observable.
    pub fn distance_computations(&self) -> u64 {
        self.distance_computations
    }

    /// Candidates the batch assignment kernel skipped via its exact
    /// `O(1)` lower bounds during refinement — the norm bound
    /// `(‖x‖−‖c‖)²` plus the coordinate-gap bounds of the sorted sweep —
    /// the second pruning observable next to
    /// [`KMeansModel::distance_computations`]. Exactly reproducible:
    /// thread counts, block sizes, and worker counts never change it.
    pub fn pruned_by_norm_bound(&self) -> u64 {
        self.pruned_by_norm_bound
    }

    /// Name of the initializer that seeded this model.
    pub fn init_name(&self) -> &'static str {
        self.init_name
    }

    /// Name of the refiner that produced the final centers.
    pub fn refiner_name(&self) -> &'static str {
        self.refiner_name
    }

    /// The executor configuration the model was fitted with; `predict`
    /// and `cost_of` reuse it.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Number of training points assigned to each cluster.
    pub fn cluster_sizes(&self) -> Vec<u64> {
        let mut sizes = vec![0u64; self.centers.len()];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Assigns new points to the fitted centers, in parallel on the
    /// model's executor (deterministic: shard results concatenate in
    /// shard order).
    ///
    /// Builds a fresh [`PreparedPredictor`] per call; callers issuing
    /// many predict/cost queries against the same model (the serving
    /// tier) should hold a [`KMeansModel::prepared`] engine instead and
    /// amortize the kernel preparation.
    ///
    /// # Errors
    ///
    /// Fails if `points` has a different dimensionality than the model.
    pub fn predict(&self, points: &PointMatrix) -> Result<Vec<u32>, KMeansError> {
        self.prepared().predict(points)
    }

    /// Potential of new points under the fitted centers, in parallel on
    /// the model's executor (shard partials folded in shard order, so the
    /// result is bit-identical for any worker count). Same
    /// prepare-per-call note as [`KMeansModel::predict`].
    ///
    /// # Errors
    ///
    /// Fails if `points` has a different dimensionality than the model.
    pub fn cost_of(&self, points: &PointMatrix) -> Result<f64, KMeansError> {
        self.prepared().cost_of(points)
    }

    /// Builds a long-lived assignment engine over this model's centers
    /// and executor. `predict`/`cost_of` on the returned engine are
    /// bit-identical to the model's own methods (they share one
    /// implementation) while paying the `O(k·d + k log k)` kernel
    /// preparation once instead of per call.
    pub fn prepared(&self) -> PreparedPredictor {
        PreparedPredictor::new(self.centers.clone(), self.executor.clone())
    }

    /// The persistable subset of this model as a [`ModelRecord`]
    /// (`SKMMDL01`). Training-set artifacts that scale with `n` — labels
    /// and per-iteration history — and the executor configuration are
    /// deliberately not part of the record: a serving process supplies
    /// its own executor, and labels can be recomputed by `predict` on
    /// the training data.
    pub fn to_record(&self) -> ModelRecord {
        ModelRecord {
            centers: self.centers.clone(),
            cost: self.cost,
            seed_cost: self.init_stats.seed_cost,
            distance_computations: self.distance_computations,
            pruned_by_norm_bound: self.pruned_by_norm_bound,
            iterations: self.iterations as u64,
            init_rounds: self.init_stats.rounds.min(u32::MAX as usize) as u32,
            init_passes: self.init_stats.passes.min(u32::MAX as usize) as u32,
            init_candidates: self.init_stats.candidates as u64,
            converged: self.converged,
            init_name: self.init_name.to_string(),
            refiner_name: self.refiner_name.to_string(),
        }
    }

    /// Reassembles a model from a persisted [`ModelRecord`] plus the
    /// executor the revived model should run on. The training-set labels
    /// and iteration history are empty (not persisted); stage names are
    /// mapped back to the workspace's stable names, with unknown names
    /// collapsing to `"loaded"`.
    pub fn from_record(record: ModelRecord, executor: Executor) -> KMeansModel {
        KMeansModel {
            init_stats: InitStats {
                rounds: record.init_rounds as usize,
                passes: record.init_passes as usize,
                candidates: record.init_candidates as usize,
                seed_cost: record.seed_cost,
                duration: Duration::ZERO,
            },
            centers: record.centers,
            labels: Vec::new(),
            cost: record.cost,
            iterations: record.iterations as usize,
            converged: record.converged,
            history: Vec::new(),
            distance_computations: record.distance_computations,
            pruned_by_norm_bound: record.pruned_by_norm_bound,
            init_name: static_stage_name(&record.init_name, INIT_NAMES),
            refiner_name: static_stage_name(&record.refiner_name, REFINER_NAMES),
            executor,
        }
    }

    /// Saves this model as an `SKMMDL01` file (see
    /// `kmeans_data::modelfile` for the layout).
    ///
    /// # Errors
    ///
    /// Propagates encoding and I/O failures as [`KMeansError::Data`].
    pub fn save(&self, path: &Path) -> Result<(), KMeansError> {
        kmeans_data::save_model_file(path, &self.to_record())
            .map_err(|e| KMeansError::Data(e.to_string()))
    }

    /// Loads an `SKMMDL01` file saved by [`KMeansModel::save`], running
    /// on a default-shard-size executor with the given parallelism.
    ///
    /// # Errors
    ///
    /// Propagates decoding and I/O failures as [`KMeansError::Data`].
    pub fn load(path: &Path, parallelism: Parallelism) -> Result<KMeansModel, KMeansError> {
        let record =
            kmeans_data::load_model_file(path).map_err(|e| KMeansError::Data(e.to_string()))?;
        Ok(KMeansModel::from_record(record, Executor::new(parallelism)))
    }
}

/// Stage names a persisted record can map back to `&'static str`.
const INIT_NAMES: &[&str] = &[
    "kmeans-par",
    "kmeans++",
    "random",
    "afk-mc2",
    "partition",
    "coreset",
];
const REFINER_NAMES: &[&str] = &["lloyd", "hamerly", "minibatch", "none"];

fn static_stage_name(name: &str, known: &[&'static str]) -> &'static str {
    known
        .iter()
        .find(|&&k| k == name)
        .copied()
        .unwrap_or("loaded")
}

/// A long-lived batch assignment engine: the centers with their
/// [`AssignKernel`] prepared once, plus the executor that shards each
/// query. This is the unit the serving tier holds per model revision —
/// the `O(k·d + k log k)` preparation is paid at construction and every
/// subsequent query reuses it, where the one-shot
/// [`KMeansModel::predict`] pays it per call.
///
/// Determinism contract: [`PreparedPredictor::predict`] and
/// [`PreparedPredictor::cost_of`] are bit-identical to the
/// [`KMeansModel`] methods of the model the engine came from (they are
/// the single shared implementation), and
/// [`PreparedPredictor::cost_from_d2`] folds an externally stored `d²`
/// slice on the same shard grid, so a server that batches queries
/// through [`PreparedPredictor::assign`] reproduces `cost_of` bitwise.
#[derive(Debug)]
pub struct PreparedPredictor {
    centers: PointMatrix,
    kernel: AssignKernel,
    executor: Executor,
}

impl PreparedPredictor {
    /// Prepares the assignment kernel over `centers` (`O(k·d + k log k)`).
    ///
    /// # Panics
    ///
    /// Panics if `centers` is empty (no assignment target exists) —
    /// matching [`AssignKernel::new`].
    pub fn new(centers: PointMatrix, executor: Executor) -> Self {
        let kernel = AssignKernel::new(&centers);
        PreparedPredictor {
            centers,
            kernel,
            executor,
        }
    }

    /// The centers the engine assigns against (`k × d`).
    pub fn centers(&self) -> &PointMatrix {
        &self.centers
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centers.len()
    }

    /// Dimensionality of the centers.
    pub fn dim(&self) -> usize {
        self.centers.dim()
    }

    /// The executor queries run on.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    fn check_dim(&self, points: &PointMatrix) -> Result<(), KMeansError> {
        if points.dim() != self.centers.dim() {
            return Err(KMeansError::DimensionMismatch {
                expected: self.centers.dim(),
                got: points.dim(),
            });
        }
        Ok(())
    }

    /// Nearest-center label for each point, shard results concatenated
    /// in shard order (deterministic for any worker count).
    ///
    /// # Errors
    ///
    /// Fails if `points` has a different dimensionality than the centers.
    pub fn predict(&self, points: &PointMatrix) -> Result<Vec<u32>, KMeansError> {
        self.check_dim(points)?;
        let shards: Vec<Vec<u32>> = self.executor.map_shards(points.len(), |_, range| {
            let mut labels = vec![0u32; range.len()];
            let mut d2 = vec![0.0f64; range.len()];
            self.kernel.assign(points, range, &mut labels, &mut d2);
            labels
        });
        Ok(shards.into_iter().flatten().collect())
    }

    /// Potential of `points` under the centers (shard partials folded in
    /// shard order — bit-identical for any worker count).
    ///
    /// # Errors
    ///
    /// Fails if `points` has a different dimensionality than the centers.
    pub fn cost_of(&self, points: &PointMatrix) -> Result<f64, KMeansError> {
        self.check_dim(points)?;
        Ok(self
            .executor
            .map_reduce(
                points.len(),
                |_, range| {
                    let mut labels = vec![0u32; range.len()];
                    let mut d2 = vec![0.0f64; range.len()];
                    self.kernel.assign(points, range, &mut labels, &mut d2);
                    d2.iter().sum::<f64>()
                },
                |a, b| a + b,
            )
            .unwrap_or(0.0))
    }

    /// Labels **and** squared distances in one pass, plus the kernel's
    /// pruning counters — the batch shape of the serving tier, which
    /// answers predict and cost queries from the same sweep. Per-point
    /// outputs are pure functions of (point, centers), so slicing the
    /// returned vectors at request boundaries yields exactly what each
    /// request would have gotten alone.
    ///
    /// # Errors
    ///
    /// Fails if `points` has a different dimensionality than the centers.
    #[allow(clippy::type_complexity)]
    pub fn assign(
        &self,
        points: &PointMatrix,
    ) -> Result<(Vec<u32>, Vec<f64>, KernelStats), KMeansError> {
        self.check_dim(points)?;
        let shards: Vec<(Vec<u32>, Vec<f64>, KernelStats)> =
            self.executor.map_shards(points.len(), |_, range| {
                let mut labels = vec![0u32; range.len()];
                let mut d2 = vec![0.0f64; range.len()];
                let stats = self.kernel.assign(points, range, &mut labels, &mut d2);
                (labels, d2, stats)
            });
        let mut all_labels = Vec::with_capacity(points.len());
        let mut all_d2 = Vec::with_capacity(points.len());
        let mut stats = KernelStats::default();
        for (labels, d2, s) in shards {
            all_labels.extend(labels);
            all_d2.extend(d2);
            stats.absorb(s);
        }
        Ok((all_labels, all_d2, stats))
    }

    /// Folds a `d²` slice on the engine's shard grid — bit-identical to
    /// [`PreparedPredictor::cost_of`] on the points that produced it
    /// (same per-shard left-to-right sums, same in-order combine). Lets
    /// a server answer cost queries from stored [`PreparedPredictor::assign`]
    /// outputs without re-sweeping the points.
    pub fn cost_from_d2(&self, d2: &[f64]) -> f64 {
        self.executor
            .map_reduce(
                d2.len(),
                |_, range| d2[range].iter().sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::KMeansParallelConfig;
    use crate::minibatch::MiniBatchConfig;
    use crate::pipeline::{AfkMc2, HamerlyLloyd, MiniBatch, NoRefine};

    fn blobs() -> PointMatrix {
        let mut m = PointMatrix::new(2);
        for (cx, cy) in [(0.0, 0.0), (50.0, 0.0), (0.0, 50.0)] {
            for i in 0..60 {
                m.push(&[cx + (i % 8) as f64 * 0.1, cy + (i / 8) as f64 * 0.1])
                    .unwrap();
            }
        }
        m
    }

    #[test]
    fn fit_produces_consistent_model() {
        let points = blobs();
        let model = KMeans::params(3)
            .seed(1)
            .parallelism(Parallelism::Sequential)
            .fit(&points)
            .unwrap();
        assert_eq!(model.k(), 3);
        assert_eq!(model.labels().len(), points.len());
        assert!(model.converged());
        assert!(model.iterations() >= 1);
        assert!(!model.history().is_empty());
        assert_eq!(model.init_name(), "kmeans-par");
        assert_eq!(model.refiner_name(), "lloyd");
        assert!(model.distance_computations() > 0);
        // Final cost must not exceed the seed cost (Lloyd only improves).
        assert!(model.cost() <= model.init_stats().seed_cost + 1e-9);
        // Each blob in its own cluster → tiny final cost.
        assert!(model.cost() < 100.0, "cost {}", model.cost());
    }

    #[test]
    fn fit_is_deterministic_per_seed_and_parallelism_invariant() {
        let points = blobs();
        let fit = |par: Parallelism| {
            KMeans::params(3)
                .seed(9)
                .parallelism(par)
                .shard_size(32)
                .fit(&points)
                .unwrap()
        };
        let a = fit(Parallelism::Sequential);
        let b = fit(Parallelism::Threads(3));
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.centers(), b.centers());
        assert_eq!(a.cost().to_bits(), b.cost().to_bits());
    }

    #[test]
    fn all_init_methods_work_through_the_pipeline() {
        let points = blobs();
        for init in [
            InitMethod::Random,
            InitMethod::KMeansPlusPlus,
            InitMethod::KMeansParallel(KMeansParallelConfig::default()),
        ] {
            let model = KMeans::params(3)
                .init(init.clone())
                .seed(11)
                .parallelism(Parallelism::Sequential)
                .fit(&points)
                .unwrap();
            assert_eq!(model.k(), 3, "{init:?}");
        }
    }

    #[test]
    fn refine_stage_is_swappable() {
        let points = blobs();
        let base = KMeans::params(3)
            .init(InitMethod::KMeansPlusPlus)
            .seed(8)
            .parallelism(Parallelism::Sequential);
        let lloyd = base.clone().fit(&points).unwrap();
        let hamerly = base
            .clone()
            .refine(HamerlyLloyd::default())
            .fit(&points)
            .unwrap();
        // Exact algorithm: same assignment. (Real pruning ratios are
        // asserted on larger data in `pipeline` and `accel` tests; on a
        // 180-point toy set the k² bound overhead can dominate.)
        assert_eq!(lloyd.labels(), hamerly.labels());
        assert!(hamerly.distance_computations() > 0);
        assert_eq!(hamerly.refiner_name(), "hamerly");

        let seed_only = base.clone().refine(NoRefine).fit(&points).unwrap();
        assert_eq!(seed_only.iterations(), 0);
        assert!(
            (seed_only.cost() - seed_only.init_stats().seed_cost).abs()
                <= 1e-9 * (1.0 + seed_only.cost())
        );

        let mini = base
            .refine(MiniBatch(MiniBatchConfig {
                batch_size: 64,
                iterations: 100,
            }))
            .fit(&points)
            .unwrap();
        assert!(mini.cost() <= seed_only.cost() + 1e-9);
        assert_eq!(mini.refiner_name(), "minibatch");
    }

    #[test]
    fn afk_mc2_reaches_the_builder() {
        let points = blobs();
        let model = KMeans::params(3)
            .init(AfkMc2 { chain_length: 30 })
            .seed(4)
            .parallelism(Parallelism::Sequential)
            .fit(&points)
            .unwrap();
        assert_eq!(model.k(), 3);
        assert_eq!(model.init_name(), "afk-mc2");
        assert!(model.converged());
    }

    #[test]
    fn weighted_fit_biases_toward_heavy_points() {
        // One heavy point far away: with weights it deserves its own
        // center; unweighted it is outvoted by the dense blob.
        let mut points = PointMatrix::new(1);
        for i in 0..50 {
            points.push(&[i as f64 * 0.01]).unwrap();
        }
        points.push(&[1000.0]).unwrap();
        let mut weights = vec![1.0; 50];
        weights.push(500.0);
        let model = KMeans::params(2)
            .init(InitMethod::KMeansPlusPlus)
            .weights(&weights)
            .seed(3)
            .parallelism(Parallelism::Sequential)
            .fit(&points)
            .unwrap();
        assert!(
            model.centers().rows().any(|r| (r[0] - 1000.0).abs() < 1.0),
            "heavy point has no center: {:?}",
            model.centers()
        );
        // Weighted cost is consistent: the heavy point sits on its own
        // center, leaving only the dense blob's internal spread (≈ 1.04).
        assert!(model.cost() < 2.0, "cost {}", model.cost());
    }

    #[test]
    fn invalid_weights_are_rejected_by_fit() {
        let points = blobs();
        let err = KMeans::params(3)
            .weights(&[1.0, 2.0])
            .fit(&points)
            .unwrap_err();
        assert!(matches!(err, KMeansError::InvalidConfig(_)));
        let bad = vec![f64::NAN; points.len()];
        let err = KMeans::params(3).weights(&bad).fit(&points).unwrap_err();
        assert!(matches!(err, KMeansError::InvalidConfig(_)));
    }

    #[test]
    fn cluster_sizes_sum_to_n() {
        let points = blobs();
        let model = KMeans::params(3)
            .seed(6)
            .parallelism(Parallelism::Sequential)
            .fit(&points)
            .unwrap();
        let sizes = model.cluster_sizes();
        assert_eq!(sizes.len(), 3);
        assert_eq!(sizes.iter().sum::<u64>(), points.len() as u64);
        assert!(sizes.iter().all(|&s| s > 0), "{sizes:?}");
    }

    #[test]
    fn predict_assigns_to_nearest_center() {
        let points = blobs();
        let model = KMeans::params(3)
            .seed(2)
            .parallelism(Parallelism::Sequential)
            .fit(&points)
            .unwrap();
        let queries = PointMatrix::from_flat(vec![1.0, 1.0, 49.0, 1.0], 2).unwrap();
        let labels = model.predict(&queries).unwrap();
        assert_eq!(labels.len(), 2);
        assert_ne!(labels[0], labels[1]);
        let cost = model.cost_of(&queries).unwrap();
        assert!(cost > 0.0 && cost < 50.0);
    }

    #[test]
    fn predict_and_cost_of_are_parallelism_invariant() {
        let points = blobs();
        let fit = |par: Parallelism| {
            KMeans::params(3)
                .seed(2)
                .parallelism(par)
                .shard_size(16)
                .fit(&points)
                .unwrap()
        };
        let seq = fit(Parallelism::Sequential);
        let par = fit(Parallelism::Threads(4));
        assert_eq!(seq.predict(&points).unwrap(), par.predict(&points).unwrap());
        assert_eq!(
            seq.cost_of(&points).unwrap().to_bits(),
            par.cost_of(&points).unwrap().to_bits()
        );
        // Self-prediction reproduces training labels.
        assert_eq!(par.predict(&points).unwrap(), par.labels());
    }

    #[test]
    fn prepared_predictor_matches_model_bitwise() {
        let points = blobs();
        let model = KMeans::params(3)
            .seed(2)
            .parallelism(Parallelism::Threads(3))
            .shard_size(16)
            .fit(&points)
            .unwrap();
        let engine = model.prepared();
        assert_eq!(engine.k(), model.k());
        assert_eq!(engine.dim(), points.dim());
        assert_eq!(engine.predict(&points).unwrap(), model.labels());
        let (labels, d2, stats) = engine.assign(&points).unwrap();
        assert_eq!(labels, model.labels());
        assert!(stats.distance_computations > 0);
        let direct = model.cost_of(&points).unwrap();
        assert_eq!(engine.cost_of(&points).unwrap().to_bits(), direct.to_bits());
        // Folding the stored d² slice reproduces cost_of bitwise — the
        // serving tier's cost path.
        assert_eq!(engine.cost_from_d2(&d2).to_bits(), direct.to_bits());
        assert!(engine.predict(&PointMatrix::new(3)).is_err());
    }

    #[test]
    fn model_save_load_round_trip() {
        let points = blobs();
        let model = KMeans::params(3)
            .seed(5)
            .parallelism(Parallelism::Sequential)
            .fit(&points)
            .unwrap();
        let dir = std::env::temp_dir().join(format!(
            "skm-model-rt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.skm");
        model.save(&path).unwrap();
        let revived = KMeansModel::load(&path, Parallelism::Sequential).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(revived.centers(), model.centers());
        assert_eq!(revived.cost().to_bits(), model.cost().to_bits());
        assert_eq!(
            revived.init_stats().seed_cost.to_bits(),
            model.init_stats().seed_cost.to_bits()
        );
        assert_eq!(revived.iterations(), model.iterations());
        assert_eq!(revived.converged(), model.converged());
        assert_eq!(revived.init_name(), "kmeans-par");
        assert_eq!(revived.refiner_name(), "lloyd");
        assert!(revived.labels().is_empty());
        // The revived model predicts/costs bit-identically to the source.
        assert_eq!(
            revived.predict(&points).unwrap(),
            model.predict(&points).unwrap()
        );
        assert_eq!(
            revived.cost_of(&points).unwrap().to_bits(),
            model.cost_of(&points).unwrap().to_bits()
        );
    }

    #[test]
    fn unknown_stage_names_collapse_to_loaded() {
        let points = blobs();
        let model = KMeans::params(3)
            .seed(5)
            .parallelism(Parallelism::Sequential)
            .fit(&points)
            .unwrap();
        let mut record = model.to_record();
        record.init_name = "mystery".into();
        record.refiner_name = "mystery".into();
        let revived = KMeansModel::from_record(record, Executor::new(Parallelism::Sequential));
        assert_eq!(revived.init_name(), "loaded");
        assert_eq!(revived.refiner_name(), "loaded");
    }

    #[test]
    fn predict_rejects_wrong_dim() {
        let points = blobs();
        let model = KMeans::params(2)
            .seed(3)
            .parallelism(Parallelism::Sequential)
            .fit(&points)
            .unwrap();
        let wrong = PointMatrix::from_flat(vec![1.0], 1).unwrap();
        assert!(model.predict(&wrong).is_err());
        assert!(model.cost_of(&wrong).is_err());
    }

    #[test]
    fn invalid_k_propagates() {
        let points = blobs();
        assert!(matches!(
            KMeans::params(0).fit(&points),
            Err(KMeansError::InvalidK { .. })
        ));
        assert!(matches!(
            KMeans::params(points.len() + 1).fit(&points),
            Err(KMeansError::InvalidK { .. })
        ));
    }

    #[test]
    fn lloyd_knobs_conflict_with_custom_refiner() {
        let points = blobs();
        let err = KMeans::params(3)
            .max_iterations(5)
            .refine(HamerlyLloyd::default())
            .fit(&points)
            .unwrap_err();
        assert!(matches!(err, KMeansError::InvalidConfig(_)), "{err:?}");
        let err = KMeans::params(3)
            .refine(NoRefine)
            .tol(0.1)
            .fit(&points)
            .unwrap_err();
        assert!(matches!(err, KMeansError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn max_iterations_and_tol_are_plumbed() {
        let points = blobs();
        let model = KMeans::params(3)
            .init(InitMethod::Random)
            .max_iterations(1)
            .seed(4)
            .parallelism(Parallelism::Sequential)
            .fit(&points)
            .unwrap();
        assert_eq!(model.iterations(), 1);
        let model = KMeans::params(3)
            .tol(0.9)
            .seed(4)
            .parallelism(Parallelism::Sequential)
            .fit(&points)
            .unwrap();
        assert!(model.converged());
    }
}
