//! The end-to-end pipeline: initialization followed by Lloyd's iteration,
//! behind a builder API.
//!
//! ```
//! use kmeans_core::model::KMeans;
//! use kmeans_data::synth::GaussMixture;
//!
//! let synth = GaussMixture::new(10).points(2_000).generate(1).unwrap();
//! let model = KMeans::params(10)
//!     .seed(42)
//!     .fit(synth.dataset.points())
//!     .unwrap();
//! assert_eq!(model.centers().len(), 10);
//! assert!(model.cost() > 0.0);
//! ```

use crate::error::KMeansError;
use crate::init::{InitMethod, InitStats};
use crate::lloyd::{lloyd, IterationStats, LloydConfig};
use kmeans_data::PointMatrix;
use kmeans_par::{Executor, Parallelism};

/// Builder for a k-means run (defaults follow the paper's recommendation:
/// k-means|| seeding with `ℓ = 2k`, `r = 5`, then Lloyd to stability).
#[derive(Clone, Debug)]
pub struct KMeans {
    k: usize,
    init: InitMethod,
    lloyd: LloydConfig,
    seed: u64,
    parallelism: Parallelism,
    shard_size: Option<usize>,
}

impl KMeans {
    /// Starts a builder for `k` clusters.
    pub fn params(k: usize) -> Self {
        KMeans {
            k,
            init: InitMethod::default(),
            lloyd: LloydConfig::default(),
            seed: 0,
            parallelism: Parallelism::Auto,
            shard_size: None,
        }
    }

    /// Selects the initialization method.
    pub fn init(mut self, init: InitMethod) -> Self {
        self.init = init;
        self
    }

    /// Caps the number of Lloyd iterations.
    pub fn max_iterations(mut self, max: usize) -> Self {
        self.lloyd.max_iterations = max;
        self
    }

    /// Sets the relative-improvement stopping tolerance (0 = run to
    /// assignment stability).
    pub fn tol(mut self, tol: f64) -> Self {
        self.lloyd.tol = tol;
        self
    }

    /// Sets the random seed. Runs are bit-reproducible per seed (and
    /// independent of the worker count).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the execution parallelism.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Overrides the logical shard size (part of the reproducibility key).
    pub fn shard_size(mut self, shard_size: usize) -> Self {
        self.shard_size = Some(shard_size);
        self
    }

    /// Builds the executor this configuration implies.
    fn executor(&self) -> Executor {
        let exec = Executor::new(self.parallelism);
        match self.shard_size {
            Some(s) => exec.with_shard_size(s),
            None => exec,
        }
    }

    /// Runs initialization + Lloyd on `points`.
    pub fn fit(&self, points: &PointMatrix) -> Result<KMeansModel, KMeansError> {
        let exec = self.executor();
        let init = self.init.run(points, self.k, self.seed, &exec)?;
        let result = lloyd(points, &init.centers, &self.lloyd, &exec)?;
        Ok(KMeansModel {
            centers: result.centers,
            labels: result.labels,
            cost: result.cost,
            init_stats: init.stats,
            iterations: result.iterations,
            converged: result.converged,
            history: result.history,
        })
    }
}

/// A fitted k-means model.
#[derive(Clone, Debug)]
pub struct KMeansModel {
    centers: PointMatrix,
    labels: Vec<u32>,
    cost: f64,
    init_stats: InitStats,
    iterations: usize,
    converged: bool,
    history: Vec<IterationStats>,
}

impl KMeansModel {
    /// The fitted centers (`k × d`).
    pub fn centers(&self) -> &PointMatrix {
        &self.centers
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centers.len()
    }

    /// Training-set assignment.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Final training potential (the "final" columns of Tables 1–2).
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Seeding accounting (seed cost, candidate count, passes).
    pub fn init_stats(&self) -> &InitStats {
        &self.init_stats
    }

    /// Lloyd iterations executed (the Table 6 quantity).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether Lloyd converged before the iteration cap.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Per-iteration history.
    pub fn history(&self) -> &[IterationStats] {
        &self.history
    }

    /// Number of training points assigned to each cluster.
    pub fn cluster_sizes(&self) -> Vec<u64> {
        let mut sizes = vec![0u64; self.centers.len()];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Assigns new points to the fitted centers.
    ///
    /// # Errors
    ///
    /// Fails if `points` has a different dimensionality than the model.
    pub fn predict(&self, points: &PointMatrix) -> Result<Vec<u32>, KMeansError> {
        if points.dim() != self.centers.dim() {
            return Err(KMeansError::DimensionMismatch {
                expected: self.centers.dim(),
                got: points.dim(),
            });
        }
        Ok(points
            .rows()
            .map(|row| crate::distance::nearest(row, &self.centers).0 as u32)
            .collect())
    }

    /// Potential of new points under the fitted centers.
    ///
    /// # Errors
    ///
    /// Fails if `points` has a different dimensionality than the model.
    pub fn cost_of(&self, points: &PointMatrix) -> Result<f64, KMeansError> {
        if points.dim() != self.centers.dim() {
            return Err(KMeansError::DimensionMismatch {
                expected: self.centers.dim(),
                got: points.dim(),
            });
        }
        Ok(points
            .rows()
            .map(|row| crate::distance::nearest(row, &self.centers).1)
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::KMeansParallelConfig;

    fn blobs() -> PointMatrix {
        let mut m = PointMatrix::new(2);
        for (cx, cy) in [(0.0, 0.0), (50.0, 0.0), (0.0, 50.0)] {
            for i in 0..60 {
                m.push(&[cx + (i % 8) as f64 * 0.1, cy + (i / 8) as f64 * 0.1])
                    .unwrap();
            }
        }
        m
    }

    #[test]
    fn fit_produces_consistent_model() {
        let points = blobs();
        let model = KMeans::params(3)
            .seed(1)
            .parallelism(Parallelism::Sequential)
            .fit(&points)
            .unwrap();
        assert_eq!(model.k(), 3);
        assert_eq!(model.labels().len(), points.len());
        assert!(model.converged());
        assert!(model.iterations() >= 1);
        assert!(!model.history().is_empty());
        // Final cost must not exceed the seed cost (Lloyd only improves).
        assert!(model.cost() <= model.init_stats().seed_cost + 1e-9);
        // Each blob in its own cluster → tiny final cost.
        assert!(model.cost() < 100.0, "cost {}", model.cost());
    }

    #[test]
    fn fit_is_deterministic_per_seed_and_parallelism_invariant() {
        let points = blobs();
        let fit = |par: Parallelism| {
            KMeans::params(3)
                .seed(9)
                .parallelism(par)
                .shard_size(32)
                .fit(&points)
                .unwrap()
        };
        let a = fit(Parallelism::Sequential);
        let b = fit(Parallelism::Threads(3));
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.centers(), b.centers());
        assert_eq!(a.cost().to_bits(), b.cost().to_bits());
    }

    #[test]
    fn all_init_methods_work_through_the_pipeline() {
        let points = blobs();
        for init in [
            InitMethod::Random,
            InitMethod::KMeansPlusPlus,
            InitMethod::KMeansParallel(KMeansParallelConfig::default()),
        ] {
            let model = KMeans::params(3)
                .init(init.clone())
                .seed(11)
                .parallelism(Parallelism::Sequential)
                .fit(&points)
                .unwrap();
            assert_eq!(model.k(), 3, "{init:?}");
        }
    }

    #[test]
    fn cluster_sizes_sum_to_n() {
        let points = blobs();
        let model = KMeans::params(3)
            .seed(6)
            .parallelism(Parallelism::Sequential)
            .fit(&points)
            .unwrap();
        let sizes = model.cluster_sizes();
        assert_eq!(sizes.len(), 3);
        assert_eq!(sizes.iter().sum::<u64>(), points.len() as u64);
        assert!(sizes.iter().all(|&s| s > 0), "{sizes:?}");
    }

    #[test]
    fn predict_assigns_to_nearest_center() {
        let points = blobs();
        let model = KMeans::params(3)
            .seed(2)
            .parallelism(Parallelism::Sequential)
            .fit(&points)
            .unwrap();
        let queries = PointMatrix::from_flat(vec![1.0, 1.0, 49.0, 1.0], 2).unwrap();
        let labels = model.predict(&queries).unwrap();
        assert_eq!(labels.len(), 2);
        assert_ne!(labels[0], labels[1]);
        let cost = model.cost_of(&queries).unwrap();
        assert!(cost > 0.0 && cost < 50.0);
    }

    #[test]
    fn predict_rejects_wrong_dim() {
        let points = blobs();
        let model = KMeans::params(2)
            .seed(3)
            .parallelism(Parallelism::Sequential)
            .fit(&points)
            .unwrap();
        let wrong = PointMatrix::from_flat(vec![1.0], 1).unwrap();
        assert!(model.predict(&wrong).is_err());
        assert!(model.cost_of(&wrong).is_err());
    }

    #[test]
    fn invalid_k_propagates() {
        let points = blobs();
        assert!(matches!(
            KMeans::params(0).fit(&points),
            Err(KMeansError::InvalidK { .. })
        ));
        assert!(matches!(
            KMeans::params(points.len() + 1).fit(&points),
            Err(KMeansError::InvalidK { .. })
        ));
    }

    #[test]
    fn max_iterations_and_tol_are_plumbed() {
        let points = blobs();
        let model = KMeans::params(3)
            .init(InitMethod::Random)
            .max_iterations(1)
            .seed(4)
            .parallelism(Parallelism::Sequential)
            .fit(&points)
            .unwrap();
        assert_eq!(model.iterations(), 1);
        let model = KMeans::params(3)
            .tol(0.9)
            .seed(4)
            .parallelism(Parallelism::Sequential)
            .fit(&points)
            .unwrap();
        assert!(model.converged());
    }
}
