//! Point-to-center assignment and per-cluster accumulation — the inner step
//! of Lloyd's iteration, in its sequential, parallel, and weighted forms.
//!
//! The parallel form mirrors the MapReduce sketch of §3.5: each shard
//! computes partial sums/counts/cost ("mapper"), and the partials are folded
//! **in shard order** ("reducer") so the result is bit-identical for any
//! worker count.
//!
//! Memory note: a partial holds `k·d` floats. To keep `shards × k·d` bounded
//! on big runs (the paper's k = 1000, d = 42), accumulation uses at most
//! [`MAX_SUM_SHARDS`] shards regardless of the executor's shard size —
//! a fixed number, so determinism across worker counts is preserved.

use crate::distance::nearest;
use crate::kernel::{AssignKernel, KernelStats};
use kmeans_data::PointMatrix;
use kmeans_par::Executor;

/// Upper bound on the number of accumulation shards (fixed, so results do
/// not depend on the worker count; comfortably more than any realistic
/// core count on one machine).
pub const MAX_SUM_SHARDS: usize = 64;

/// Per-cluster accumulation produced by one assignment pass.
#[derive(Clone, Debug)]
pub struct ClusterSums {
    /// `k × d` per-cluster coordinate sums (row-major).
    pub sums: Vec<f64>,
    /// Points per cluster.
    pub counts: Vec<u64>,
    /// Total potential under the given centers.
    pub cost: f64,
    /// Globally farthest point from its center in each accumulation shard:
    /// `(point_index, d²)` — used for deterministic empty-cluster reseeding.
    pub farthest: Vec<(usize, f64)>,
    /// Kernel work accounting for the pass (distance evaluations actually
    /// performed and candidates skipped by the norm bound). Deterministic
    /// across thread counts, block sizes, and worker counts — distributed
    /// workers ship their counters in the partials frames and the
    /// coordinator sums them, so the fold equals the single-node value.
    pub stats: KernelStats,
}

impl ClusterSums {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.counts.len()
    }

    /// The centroid of cluster `c`, or `None` if the cluster is empty.
    pub fn centroid(&self, c: usize, dim: usize) -> Option<Vec<f64>> {
        if self.counts[c] == 0 {
            return None;
        }
        let inv = 1.0 / self.counts[c] as f64;
        Some(
            self.sums[c * dim..(c + 1) * dim]
                .iter()
                .map(|&s| s * inv)
                .collect(),
        )
    }
}

/// Accumulation shard size used by [`assign_and_sum`]. Public because every
/// pass that must stay bit-identical with the in-memory fold has to
/// reproduce the exact same shard layout: the chunked assignment pass
/// ([`crate::chunked::assign_and_sum_chunked`]) and the distributed
/// workers, whose row ranges must start on these boundaries.
pub fn sum_shard_size(exec: &Executor, n: usize) -> usize {
    sum_shard_size_for(exec.shard_spec().shard_size(), n)
}

/// [`sum_shard_size`] from a bare base shard size — for callers (the
/// distributed coordinator) that know the executor's shard size but not
/// the executor itself.
///
/// The result is always a **multiple of the base shard size** (and at
/// least one base shard, at most [`MAX_SUM_SHARDS`] shards over `n`):
/// the accumulation grid nests on the executor grid, so a distributed
/// worker boundary aligned to this one value is automatically aligned to
/// both grids — and the value stays O(n/64 + base), always reachable by
/// `skm shard --align`.
pub fn sum_shard_size_for(base_shard_size: usize, n: usize) -> usize {
    let base = base_shard_size.max(1);
    n.div_ceil(MAX_SUM_SHARDS).div_ceil(base).max(1) * base
}

/// Executor with the accumulation shard size described in the module docs.
fn sum_executor(exec: &Executor, n: usize) -> Executor {
    exec.clone().with_shard_size(sum_shard_size(exec, n))
}

/// Assigns every point to its nearest center, returning labels and
/// per-cluster sums in one parallel pass.
///
/// # Panics
///
/// Panics if `centers` is empty or dimensionalities differ.
pub fn assign_and_sum(
    points: &PointMatrix,
    centers: &PointMatrix,
    exec: &Executor,
) -> (Vec<u32>, ClusterSums) {
    assert!(!centers.is_empty(), "assign_and_sum: no centers");
    assert_eq!(points.dim(), centers.dim(), "assign_and_sum: dim mismatch");
    let k = centers.len();
    let d = points.dim();
    let exec = sum_executor(exec, points.len());
    let kernel = AssignKernel::new(centers);

    struct Partial {
        labels: Vec<u32>,
        sums: Vec<f64>,
        counts: Vec<u64>,
        cost: f64,
        farthest: (usize, f64),
        stats: KernelStats,
    }

    let partials: Vec<Partial> = exec.map_shards(points.len(), |_, range| {
        // Batched nearest-center pass (tiled + norm-pruned; bit-identical
        // to the per-point scalar scan), then one accumulation sweep over
        // the still-warm rows.
        let mut labels = vec![0u32; range.len()];
        let mut d2 = vec![0.0f64; range.len()];
        let stats = kernel.assign(points, range.clone(), &mut labels, &mut d2);
        let mut sums = vec![0.0f64; k * d];
        let mut counts = vec![0u64; k];
        let mut cost = 0.0;
        let mut farthest = (usize::MAX, f64::NEG_INFINITY);
        for (off, i) in range.enumerate() {
            let c = labels[off] as usize;
            let dist = d2[off];
            counts[c] += 1;
            cost += dist;
            if dist > farthest.1 {
                farthest = (i, dist);
            }
            let dst = &mut sums[c * d..(c + 1) * d];
            for (acc, &v) in dst.iter_mut().zip(points.row(i)) {
                *acc += v;
            }
        }
        Partial {
            labels,
            sums,
            counts,
            cost,
            farthest,
            stats,
        }
    });

    let mut labels = Vec::with_capacity(points.len());
    let mut out = ClusterSums {
        sums: vec![0.0; k * d],
        counts: vec![0; k],
        cost: 0.0,
        farthest: Vec::with_capacity(partials.len()),
        stats: KernelStats::default(),
    };
    for p in partials {
        labels.extend_from_slice(&p.labels);
        for (acc, v) in out.sums.iter_mut().zip(p.sums) {
            *acc += v;
        }
        for (acc, v) in out.counts.iter_mut().zip(p.counts) {
            *acc += v;
        }
        out.cost += p.cost;
        if p.farthest.0 != usize::MAX {
            out.farthest.push(p.farthest);
        }
        out.stats.absorb(p.stats);
    }
    (labels, out)
}

/// Weighted assignment over a (small) weighted point set — sequential.
///
/// Returns labels and weighted cluster sums (counts become weight totals).
pub fn assign_weighted(
    points: &PointMatrix,
    weights: &[f64],
    centers: &PointMatrix,
) -> (Vec<u32>, Vec<f64>, Vec<f64>, f64) {
    assert_eq!(points.len(), weights.len(), "assign_weighted: lengths");
    assert!(!centers.is_empty(), "assign_weighted: no centers");
    let k = centers.len();
    let d = points.dim();
    let mut labels = Vec::with_capacity(points.len());
    let mut sums = vec![0.0f64; k * d];
    let mut wsum = vec![0.0f64; k];
    let mut cost = 0.0;
    for (i, row) in points.rows().enumerate() {
        let (c, d2) = nearest(row, centers);
        labels.push(c as u32);
        let w = weights[i];
        wsum[c] += w;
        cost += w * d2;
        let dst = &mut sums[c * d..(c + 1) * d];
        for (acc, &v) in dst.iter_mut().zip(row) {
            *acc += w * v;
        }
    }
    (labels, sums, wsum, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmeans_par::Parallelism;

    fn two_blob_points() -> PointMatrix {
        let mut m = PointMatrix::new(2);
        for i in 0..10 {
            m.push(&[i as f64 * 0.1, 0.0]).unwrap();
        }
        for i in 0..10 {
            m.push(&[100.0 + i as f64 * 0.1, 0.0]).unwrap();
        }
        m
    }

    #[test]
    fn labels_and_counts_are_correct() {
        let points = two_blob_points();
        let centers = PointMatrix::from_flat(vec![0.0, 0.0, 100.0, 0.0], 2).unwrap();
        let (labels, sums) = assign_and_sum(&points, &centers, &Executor::sequential());
        assert_eq!(labels.len(), 20);
        assert!(labels[..10].iter().all(|&l| l == 0));
        assert!(labels[10..].iter().all(|&l| l == 1));
        assert_eq!(sums.counts, vec![10, 10]);
        assert_eq!(sums.k(), 2);
        // Centroid of the first blob: x = mean(0.0..0.9) = 0.45.
        let c0 = sums.centroid(0, 2).unwrap();
        assert!((c0[0] - 0.45).abs() < 1e-12);
        assert_eq!(c0[1], 0.0);
    }

    #[test]
    fn empty_cluster_centroid_is_none() {
        let points = two_blob_points();
        // Third center attracts nothing.
        let centers = PointMatrix::from_flat(vec![0.0, 0.0, 100.0, 0.0, 1e9, 1e9], 2).unwrap();
        let (_, sums) = assign_and_sum(&points, &centers, &Executor::sequential());
        assert_eq!(sums.counts[2], 0);
        assert!(sums.centroid(2, 2).is_none());
    }

    #[test]
    fn cost_matches_potential() {
        use crate::cost::potential;
        let points = two_blob_points();
        let centers = PointMatrix::from_flat(vec![0.45, 0.0, 100.45, 0.0], 2).unwrap();
        let exec = Executor::sequential();
        let (_, sums) = assign_and_sum(&points, &centers, &exec);
        let phi = potential(&points, &centers, &exec);
        assert!((sums.cost - phi).abs() < 1e-9);
    }

    #[test]
    fn identical_across_thread_counts() {
        let points = two_blob_points();
        let centers = PointMatrix::from_flat(vec![1.0, 0.0, 99.0, 0.0], 2).unwrap();
        let run = |exec: Executor| assign_and_sum(&points, &centers, &exec.with_shard_size(4));
        let (ref_labels, ref_sums) = run(Executor::sequential());
        for threads in [2, 3] {
            let (labels, sums) = run(Executor::new(Parallelism::Threads(threads)));
            assert_eq!(labels, ref_labels);
            assert_eq!(sums.counts, ref_sums.counts);
            assert_eq!(sums.cost.to_bits(), ref_sums.cost.to_bits());
            let a: Vec<u64> = sums.sums.iter().map(|f| f.to_bits()).collect();
            let b: Vec<u64> = ref_sums.sums.iter().map(|f| f.to_bits()).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn farthest_identifies_the_outlier() {
        let mut points = two_blob_points();
        points.push(&[500.0, 0.0]).unwrap();
        let centers = PointMatrix::from_flat(vec![0.0, 0.0, 100.0, 0.0], 2).unwrap();
        let (_, sums) = assign_and_sum(&points, &centers, &Executor::sequential());
        let best = sums
            .farthest
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(best.0, 20, "outlier index");
        assert!((best.1 - 400.0 * 400.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_assignment_weights_cost_and_sums() {
        let points = PointMatrix::from_flat(vec![0.0, 4.0, 10.0], 1).unwrap();
        let centers = PointMatrix::from_flat(vec![0.0, 10.0], 1).unwrap();
        let (labels, sums, wsum, cost) = assign_weighted(&points, &[1.0, 2.0, 3.0], &centers);
        assert_eq!(labels, vec![0, 0, 1]);
        assert_eq!(wsum, vec![3.0, 3.0]);
        // cost = 1·0 + 2·16 + 3·0 = 32.
        assert!((cost - 32.0).abs() < 1e-12);
        // Weighted sum of cluster 0: 1·0 + 2·4 = 8.
        assert!((sums[0] - 8.0).abs() < 1e-12);
        assert!((sums[1] - 30.0).abs() < 1e-12);
    }

    #[test]
    fn sum_shards_are_bounded() {
        // With a tiny executor shard size and many points, the accumulation
        // pass must still produce at most MAX_SUM_SHARDS partials.
        let n = 10_000;
        let points = PointMatrix::from_flat((0..n).map(|i| i as f64).collect(), 1).unwrap();
        let centers = PointMatrix::from_flat(vec![0.0], 1).unwrap();
        let exec = Executor::sequential().with_shard_size(16);
        let (_, sums) = assign_and_sum(&points, &centers, &exec);
        assert!(sums.farthest.len() <= MAX_SUM_SHARDS);
        assert_eq!(sums.counts[0], n as u64);
    }
}
