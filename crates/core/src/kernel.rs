//! The batch-assignment kernel: nearest-center assignment for a block of
//! points against a prepared candidate set, with norm-bound pruning —
//! **bit-identical** to the scalar per-point path
//! ([`crate::distance::nearest`] / the tracker update loops) for any
//! thread count, block grouping, and execution mode.
//!
//! Every phase of Scalable K-Means++ bottlenecks on the same primitive:
//! for each point, the squared distance to each of `k` candidate centers,
//! keeping the argmin. The scalar formulation (`nearest()` once per
//! point) must touch at least a prefix of every candidate row. This
//! module restructures the same arithmetic around a *sorted* copy of the
//! candidates so that almost all of them are disposed of in `O(1)`
//! without touching their coordinates at all:
//!
//! ```text
//!  centers (k × d) ── sort by the max-variance coordinate, gather ──►
//!
//!  compact candidate features (L1-resident)    full rows (sort order)
//!  ┌────────────────────────────────────────┐  ┌───────────────┐
//!  │ key c[j*] │ c[j₂] │ ‖c‖ │ orig. index  │  │ row, row, …   │
//!  └────────────────────────────────────────┘  └───────────────┘
//!
//!  per point x:  binary-search x[j*] → proxy-pick a seed nearby →
//!                one canonical evaluation pins `best` → walk outward
//!                (alternating sides in chunks of 8):
//!
//!     ◄── stop side once (x[j*]−c[j*])² > best (monotone) ──►
//!  ┌─ pruned wholesale ─┬── live annulus ──┬─ pruned wholesale ─┐
//!                         │ per candidate: key gap → second
//!                         │ coordinate gap → norm bound →
//!                         ▼ canonical distance (near-winners only)
//! ```
//!
//! * **Sort-key pruning** — candidates are sorted along their
//!   largest-variance coordinate `j*` (chosen deterministically per
//!   candidate set). The exact bound `(x[j*]−c[j*])² ≤ ‖x−c‖²` is
//!   *monotone* along each direction of the outward walk, so the first
//!   candidate it disqualifies disqualifies the whole remainder of that
//!   side in `O(1)`. Coordinate gaps are exact reads — they need no
//!   floating-point margin.
//! * **Norm-bound pruning** — `‖c‖` is precomputed once per candidate
//!   set and `‖x‖` once per point; inside the surviving annulus the
//!   reverse-triangle bound `(‖x‖−‖c‖)² ≤ ‖x−c‖²` (applied with the
//!   conservative margin below) and a second coordinate gap `(x[j₂]−c[j₂])²`
//!   dispose of most remaining candidates without loading their rows.
//! * **Seeded best** — each point binary-searches its key into the
//!   sorted order and evaluates one proxy-picked nearby candidate first,
//!   so `best` is tight before the walk starts and the bounds bite from
//!   the first candidate onward.
//! * **Register-blocked compute** — the per-point norm runs on four
//!   independent accumulation lanes (the layout LLVM turns into packed
//!   SIMD), the `O(1)` filters stream the compact feature arrays, and
//!   only candidates no filter could reject (≈ the actual winners) are
//!   computed in the canonical accumulation order — *only these values
//!   ever update the result state*.
//!
//! # The bit-parity argument
//!
//! The scalar scan (index order, strict `<` updates) returns exactly
//! *the minimum canonical distance and the lowest center index attaining
//! it* — where "canonical" means the accumulation order of
//! [`sq_dist_bounded`]'s non-abandoned path (the shared
//! `sq_chunk8`/`sq_tail` helpers in [`crate::distance`]). The kernel
//! computes the same pair under a *different candidate order*, which is
//! sound because:
//!
//! 1. **Only canonical values change state.** Every update to
//!    `(best, label)` uses a full canonical-order distance — the same
//!    bits the scalar path produces for that pair. The bounds are used
//!    exclusively to *skip* candidates.
//! 2. **Selection is order-free.** The running state keeps the minimum
//!    canonical value seen and breaks exact ties toward the lower center
//!    index (`d < best`, or `d == best` with a smaller index than the
//!    current *improving* candidate; a tie with the carried-in value of
//!    an incremental update never replaces it, matching the scalar
//!    suffix scan's strict `<`). Any evaluation order yields the scalar
//!    result.
//! 3. **Skips are strict.** A candidate is skipped only on proof that
//!    its canonical distance is *strictly greater* than the current best
//!    (every filter — the coordinate gaps, the norm bound, and the
//!    canonical abandon, which uses `best.next_up()` as its bound —
//!    guarantees the strict inequality). A skipped candidate can
//!    therefore never be the minimizer, nor a lower-index holder of an
//!    exact tie.
//!
//! The per-point decision sequence is a pure function of the point, the
//! sorted candidate set, and the carried best — how points are grouped
//! into shards, chunked-source blocks, or batches cannot change any
//! outcome, which also makes [`KernelStats`] deterministic across thread
//! counts and block sizes.
//!
//! # Why the ε-slack cannot change results
//!
//! In real arithmetic every filter is an exact lower bound on the
//! squared distance. In floating point each can overshoot the canonical
//! value: the computed norms carry a relative error of about
//! `(d/2+2)·ε` each, which their difference turns into an error bounded
//! by the same multiple of `‖x‖+‖c‖`; squaring a gap adds a few `ε`; and
//! the canonical value itself may undershoot the true distance by a
//! relative `≈ (d+2)·ε`. The kernel therefore compares every filter
//! against the pre-inflated threshold
//!
//! ```text
//! binv = best · (1 + 4ε) / (1 − (2d+16)·ε)
//! key/coordinate filters: skip ⇔ (x[j]−c[j])²                    > binv
//! norm filter:            skip ⇔ (|nx−nc| − (2d+16)·ε·(nx+nc))²  > binv
//! ```
//!
//! The `(2d+16)·ε` coefficient dominates every error term above with a
//! comfortable margin, so each left-hand side is a *certified lower
//! bound* on the canonical distance: a skip can only discard a candidate
//! whose canonical distance strictly exceeds `best`. Non-finite inputs
//! disable the filters naturally — a NaN or ∞ makes the strict `>`
//! comparisons false (a point whose sort-key coordinate is non-finite
//! skips the pruned sweep entirely and scans every candidate, and
//! NaN-key candidates are scanned unconditionally after the walk), and
//! such candidates fall through to the canonical path, which handles
//! them exactly like the scalar loop. The slack is a few parts in 10¹³ —
//! it costs essentially no pruning power.

use crate::distance::sq_dist_bounded;
use kmeans_data::PointMatrix;
use std::ops::Range;

/// Minimum candidate count for the pruned sweep to pay for the `O(d)`
/// point-norm precomputation and the seed search; below it the kernel
/// scans every candidate canonically (still bit-identical).
const PRUNE_MIN_CANDIDATES: usize = 8;

/// Work accounting for one kernel call. Both counters are exact and —
/// because every skip decision is a pure function of per-point state —
/// deterministic across thread counts, shard layouts, and chunked block
/// sizes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Point–center pairs whose coordinates were actually visited by
    /// the canonical (possibly bound-abandoned) computation.
    pub distance_computations: u64,
    /// Point–center pairs skipped in `O(1)` by the norm or
    /// coordinate-gap lower bounds (wholesale side stops included).
    pub pruned_by_norm_bound: u64,
}

impl KernelStats {
    /// Adds another call's counters into this one.
    pub fn absorb(&mut self, other: KernelStats) {
        self.distance_computations += other.distance_computations;
        self.pruned_by_norm_bound += other.pruned_by_norm_bound;
    }
}

/// A candidate set prepared for batch assignment: a norm-sorted copy of
/// the centers (or of the suffix `from..` for incremental updates), the
/// compact per-candidate feature table, and the slack constants.
///
/// Construction costs `O(k·d + k log k)`; every subsequent
/// [`AssignKernel::assign`] / [`AssignKernel::update`] call reuses it.
/// The kernel is `Sync`, so one instance is shared across the executor's
/// worker threads.
///
/// ```
/// use kmeans_core::distance::nearest;
/// use kmeans_core::kernel::AssignKernel;
/// use kmeans_data::PointMatrix;
///
/// let points = PointMatrix::from_flat((0..40).map(f64::from).collect(), 2).unwrap();
/// let centers = PointMatrix::from_flat(vec![0.0, 1.0, 30.0, 31.0], 2).unwrap();
/// let kernel = AssignKernel::new(&centers);
/// let mut labels = vec![0u32; points.len()];
/// let mut d2 = vec![0.0f64; points.len()];
/// kernel.assign(&points, 0..points.len(), &mut labels, &mut d2);
/// for (i, row) in points.rows().enumerate() {
///     let (c, dist) = nearest(row, &centers);
///     assert_eq!(labels[i], c as u32);                  // same winner…
///     assert_eq!(d2[i].to_bits(), dist.to_bits());      // …same bits.
/// }
/// ```
#[derive(Debug)]
pub struct AssignKernel {
    /// First candidate index (0 for full assignment, `from` for updates).
    from: usize,
    /// Total size of the center set the candidates came from.
    k: usize,
    /// Dimensionality.
    dim: usize,
    /// The *sort dimension*: the coordinate with the largest variance
    /// over the candidates (ties → lowest index). Sorting along the most
    /// spread-out coordinate keeps the surviving annulus of the sweep as
    /// narrow as the data allows; coordinate gaps need no error margin,
    /// unlike the norm.
    key_dim: usize,
    /// Original center index of each sorted candidate, ascending by
    /// `c[key_dim]` (ties by index; `f64::total_cmp`, NaN keys last).
    order: Vec<u32>,
    /// `c[key_dim]` of each candidate, sorted — the primary, monotone
    /// prune feature of the sweep.
    keys: Vec<f64>,
    /// Candidate norms in sorted order — the secondary prune feature.
    norms: Vec<f64>,
    /// A second coordinate (`sec_dim`) per sorted candidate — the
    /// tertiary prune feature (0.0 when `dim == 1`).
    sec: Vec<f64>,
    /// The second-largest-variance coordinate backing `sec`.
    sec_dim: usize,
    /// Number of leading sorted positions with non-NaN keys — the region
    /// the monotone side-stop may skip wholesale.
    finite_keys: usize,
    /// Candidate rows gathered in sorted order — the sweep touches this
    /// copy only for candidates that survive the `O(1)` filters.
    rows: PointMatrix,
    /// `(2d+16)·ε` — the conservative slack coefficient (module docs).
    guard: f64,
    /// `(1+4ε)/(1−guard)` rounded conservatively up — turns the
    /// per-candidate threshold into one multiply.
    inv_slack: f64,
}

impl AssignKernel {
    /// Prepares a full-assignment kernel over `centers`.
    pub fn new(centers: &PointMatrix) -> Self {
        Self::suffix(centers, 0)
    }

    /// Prepares an incremental-update kernel over the candidate suffix
    /// `centers[from..]` (the shape of every tracker update: earlier
    /// centers are already incorporated in the carried `d²`). `from ≥ k`
    /// yields an empty kernel whose update is a no-op.
    pub fn suffix(centers: &PointMatrix, from: usize) -> Self {
        let k = centers.len();
        let dim = centers.dim();
        let from = from.min(k);
        let m = k - from;
        // Per-coordinate spread of the candidates (sum of squared
        // deviations; scaling is irrelevant for the argmax). Non-finite
        // coordinates poison a dimension's score to −∞ so a clean sort
        // key is preferred when one exists.
        let (key_dim, sec_dim) = {
            let mut mean = vec![0.0f64; dim];
            for c in from..k {
                for (s, &v) in mean.iter_mut().zip(centers.row(c)) {
                    *s += v;
                }
            }
            let inv = 1.0 / m.max(1) as f64;
            for s in &mut mean {
                *s *= inv;
            }
            let mut var = vec![0.0f64; dim];
            for c in from..k {
                for ((s, &mu), &v) in var.iter_mut().zip(&mean).zip(centers.row(c)) {
                    let d = v - mu;
                    *s += d * d;
                }
            }
            for s in &mut var {
                if !s.is_finite() {
                    *s = f64::NEG_INFINITY;
                }
            }
            let best = |exclude: usize| {
                let mut arg = usize::from(exclude == 0 && dim > 1);
                for (j, &v) in var.iter().enumerate() {
                    if j != exclude && v > var[arg] {
                        arg = j;
                    }
                }
                arg
            };
            let key = best(usize::MAX);
            (key, if dim > 1 { best(key) } else { 0 })
        };
        let mut order: Vec<u32> = (from..k).map(|c| c as u32).collect();
        order.sort_by(|&a, &b| {
            centers.row(a as usize)[key_dim]
                .total_cmp(&centers.row(b as usize)[key_dim])
                .then(a.cmp(&b))
        });
        let mut rows = PointMatrix::with_capacity(dim, order.len());
        let mut keys = Vec::with_capacity(order.len());
        let mut norms = Vec::with_capacity(order.len());
        let mut sec = Vec::with_capacity(order.len());
        for &c in &order {
            let row = centers.row(c as usize);
            rows.push(row)
                .expect("candidate rows share the center dimensionality");
            keys.push(row[key_dim]);
            norms.push(norm(row));
            sec.push(if dim > 1 { row[sec_dim] } else { 0.0 });
        }
        let finite_keys = keys.iter().take_while(|v| !v.is_nan()).count();
        let guard = (2.0 * dim as f64 + 16.0) * f64::EPSILON;
        AssignKernel {
            from,
            k,
            dim,
            key_dim,
            order,
            keys,
            norms,
            sec,
            sec_dim,
            finite_keys,
            rows,
            guard,
            inv_slack: (1.0 / (1.0 - guard)) * (1.0 + 4.0 * f64::EPSILON),
        }
    }

    /// Full assignment of `points[rows]`: for each row, writes the index
    /// of its nearest center into `labels` and the squared distance into
    /// `d2` — bit-identical to calling
    /// [`nearest`](crate::distance::nearest) per row (including the
    /// `(0, ∞)` convention when no finite distance exists and low-index
    /// tie-breaking).
    ///
    /// # Panics
    ///
    /// Panics if the kernel was built with a nonzero `from`, the center
    /// set is empty, dimensionalities differ, or the output slices don't
    /// have `rows.len()` elements.
    pub fn assign(
        &self,
        points: &PointMatrix,
        rows: Range<usize>,
        labels: &mut [u32],
        d2: &mut [f64],
    ) -> KernelStats {
        assert_eq!(self.from, 0, "AssignKernel::assign on a suffix kernel");
        assert!(self.k > 0, "AssignKernel::assign: no centers");
        for (l, d) in labels.iter_mut().zip(d2.iter_mut()) {
            *l = 0;
            *d = f64::INFINITY;
        }
        self.sweep(points, rows, labels, d2)
    }

    /// Incremental update against the suffix candidates: each row's
    /// carried `(labels[i], d2[i])` entry is replaced only if some new
    /// center is strictly closer — the exact semantics (and bits) of the
    /// scalar tracker-update loop (suffix scan pruned by the carried
    /// best, strict improvement, lowest new index on ties among equally
    /// improving candidates).
    ///
    /// # Panics
    ///
    /// Same shape contract as [`AssignKernel::assign`].
    pub fn update(
        &self,
        points: &PointMatrix,
        rows: Range<usize>,
        labels: &mut [u32],
        d2: &mut [f64],
    ) -> KernelStats {
        self.sweep(points, rows, labels, d2)
    }

    /// The shared batch sweep.
    fn sweep(
        &self,
        points: &PointMatrix,
        rows: Range<usize>,
        labels: &mut [u32],
        d2: &mut [f64],
    ) -> KernelStats {
        assert_eq!(points.dim(), self.dim, "AssignKernel: dim mismatch");
        assert_eq!(labels.len(), rows.len(), "AssignKernel: labels length");
        assert_eq!(d2.len(), rows.len(), "AssignKernel: d2 length");
        let mut stats = KernelStats::default();
        let m = self.order.len();
        if m == 0 {
            return stats;
        }
        let prune = m >= PRUNE_MIN_CANDIDATES;
        for (slot, i) in rows.enumerate() {
            let row = points.row(i);
            let mut state = State {
                best: d2[slot],
                new_label: u32::MAX,
            };
            if prune && row[self.key_dim].is_finite() {
                self.scan_pruned(row, &mut state, &mut stats);
            } else {
                // Tiny candidate sets and non-finite points: plain sorted
                // scan, every candidate canonically checked (the exact
                // arithmetic of the scalar loop, in sorted order).
                for pos in 0..m {
                    stats.distance_computations += 1;
                    self.evaluate(row, pos, &mut state);
                }
            }
            d2[slot] = state.best;
            if state.new_label != u32::MAX {
                labels[slot] = state.new_label;
            }
        }
        stats
    }

    /// The annulus sweep for one point (finite sort key, pruning
    /// enabled): seed at the key-nearest candidate, then walk each side
    /// outward until the monotone key-gap bound certifies the rest of
    /// that side out wholesale.
    fn scan_pruned(&self, row: &[f64], state: &mut State, stats: &mut KernelStats) {
        let m = self.order.len();
        let fin = self.finite_keys;
        let xk = row[self.key_dim];
        let guard = self.guard;
        let xn = norm(row);
        let gx = guard * xn; // NaN-safe: a NaN margin just never prunes
        let xs = if self.dim > 1 { row[self.sec_dim] } else { 0.0 };

        // Seed selection: among a small neighborhood of the key-nearest
        // position, pick the candidate with the smallest two-feature
        // proxy — one cheap pass that usually lands on the true cluster,
        // so the first canonical evaluation already pins `best` tight.
        // (Any deterministic choice is correct; this only affects how
        // fast the bounds start to bite.)
        let pos0 = self.nearest_key_pos(xk);
        let seed = if pos0 < fin {
            // Window radius grows with the candidate density so the true
            // cluster is almost always inside it.
            let w = (3 + m / 16).min(64);
            let lo = pos0.saturating_sub(w);
            let hi = (pos0 + w + 1).min(fin);
            let mut best_pos = lo;
            let mut best_proxy = f64::INFINITY;
            for p in lo..hi {
                let gk = xk - self.keys[p];
                let gs = xs - self.sec[p];
                let gn = xn - self.norms[p];
                let proxy = gk * gk + gs * gs + gn * gn;
                if proxy < best_proxy {
                    best_proxy = proxy;
                    best_pos = p;
                }
            }
            best_pos
        } else {
            pos0
        };
        stats.distance_computations += 1;
        self.evaluate(row, seed, state);
        let mut binv = self.threshold(state.best);

        // Outward walks over the finite-key region, alternating sides in
        // chunks of 8 (predictable inner loops; the alternation bounds
        // the damage of a mis-seeded `best` to roughly twice the live
        // annulus, where a single-side walk could stream a whole flank
        // before the true cluster tightened the bound). Each side ends
        // at its monotone stop, pruning the remainder wholesale.
        const CHUNK: usize = 8;
        let mut left = seed.min(fin); // unvisited candidates below the seed
        let mut right = if seed < fin { seed + 1 } else { fin };
        loop {
            let mut steps = CHUNK.min(left);
            while steps > 0 {
                let pos = left - 1;
                let gk = xk - self.keys[pos];
                if gk * gk > binv {
                    // The single-candidate gap bound always certifies
                    // `pos` out, but the *wholesale* extension is only
                    // monotone once the walk is at or below the point's
                    // key (`gk ≥ 0`). Between a displaced seed and the
                    // key-nearest position the gaps still shrink leftward,
                    // so there only this candidate may be skipped.
                    if gk >= 0.0 {
                        stats.pruned_by_norm_bound += left as u64;
                        left = 0;
                        break;
                    }
                    stats.pruned_by_norm_bound += 1;
                    left = pos;
                    steps -= 1;
                    continue;
                }
                left = pos;
                steps -= 1;
                binv = self.filter_or_evaluate(row, pos, xn, gx, xs, binv, state, stats);
            }
            let mut steps = CHUNK.min(fin - right);
            while steps > 0 {
                let gk = self.keys[right] - xk;
                if gk * gk > binv {
                    // Mirror of the left walk: wholesale stop only once
                    // the walk is at or above the point's key.
                    if gk >= 0.0 {
                        stats.pruned_by_norm_bound += (fin - right) as u64;
                        right = fin;
                        break;
                    }
                    stats.pruned_by_norm_bound += 1;
                    right += 1;
                    steps -= 1;
                    continue;
                }
                let pos = right;
                right += 1;
                steps -= 1;
                binv = self.filter_or_evaluate(row, pos, xn, gx, xs, binv, state, stats);
            }
            if left == 0 && right >= fin {
                break;
            }
        }
        // NaN-key candidates (non-finite center coordinates in the sort
        // dimension) are never covered by the side stops: scan them
        // unconditionally. The seed can land here when every key is NaN
        // — skip its re-evaluation.
        for pos in fin..m {
            if pos == seed {
                continue;
            }
            stats.distance_computations += 1;
            self.evaluate(row, pos, state);
        }
    }

    /// One annulus candidate: the secondary `O(1)` filters (norm bound
    /// with margin, second coordinate gap), then the canonical
    /// evaluation. Returns the up-to-date threshold.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn filter_or_evaluate(
        &self,
        row: &[f64],
        pos: usize,
        xn: f64,
        gx: f64,
        xs: f64,
        binv: f64,
        state: &mut State,
        stats: &mut KernelStats,
    ) -> f64 {
        // Cheapest first: the margin-free second-coordinate gap, then
        // the norm bound with its conservative margin.
        let gs = xs - self.sec[pos];
        if gs * gs > binv {
            stats.pruned_by_norm_bound += 1;
            return binv;
        }
        let nc = self.norms[pos];
        let base = (xn - nc).abs() - (gx + self.guard * nc);
        if base > 0.0 && base * base > binv {
            stats.pruned_by_norm_bound += 1;
            return binv;
        }
        stats.distance_computations += 1;
        let before = state.best;
        self.evaluate(row, pos, state);
        if state.best < before {
            self.threshold(state.best)
        } else {
            binv
        }
    }

    /// The pre-inflated threshold `binv` (module docs): any exact lower
    /// bound exceeding it certifies `canonical > best` *strictly*.
    #[inline(always)]
    fn threshold(&self, best: f64) -> f64 {
        best * self.inv_slack
    }

    /// Position of the candidate whose sort key is closest to `xkey`
    /// (deterministic; any choice is correct — this only decides where
    /// the seed evaluation lands).
    fn nearest_key_pos(&self, xkey: f64) -> usize {
        let m = self.keys.len();
        let p = self
            .keys
            .partition_point(|v| v.total_cmp(&xkey) == std::cmp::Ordering::Less);
        if p == 0 {
            return 0;
        }
        if p >= m {
            return m - 1;
        }
        // Prefer the left neighbor on a smaller-or-equal gap; NaN gaps
        // compare false and fall through to `p`.
        if (xkey - self.keys[p - 1]).abs() <= (self.keys[p] - xkey).abs() {
            p - 1
        } else {
            p
        }
    }

    /// Evaluates sorted candidate `pos` canonically and applies the
    /// order-free selection rule (module docs):
    /// * strict improvement takes `(value, index)`;
    /// * an exact tie is taken only from an already-*improving* state
    ///   and only by a lower center index (a tie with the carried-in
    ///   best of an update never replaces it — scalar strict `<`).
    ///
    /// The canonical abandon bound is `best.next_up()`: an abandoned
    /// value then proves `canonical > best`, so neither an improvement
    /// nor an exact tie can be missed.
    #[inline]
    fn evaluate(&self, row: &[f64], pos: usize, state: &mut State) {
        let c = self.order[pos];
        let dj = sq_dist_bounded(row, self.rows.row(pos), state.best.next_up());
        if dj < state.best {
            state.best = dj;
            state.new_label = c;
        } else if state.new_label != u32::MAX && dj == state.best && c < state.new_label {
            state.new_label = c;
        }
    }
}

/// Per-point running state: the minimum canonical distance seen
/// (initialized from the carried `d²`) and the original index of the
/// best *improving* candidate (`u32::MAX` while no candidate has
/// strictly improved on the carried value).
struct State {
    best: f64,
    new_label: u32,
}

/// Euclidean norm of one row, on four independent accumulation lanes
/// (order-free: only used inside the conservatively-slacked prune
/// bounds, never in a reported value).
#[inline]
fn norm(row: &[f64]) -> f64 {
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut chunks = row.chunks_exact(4);
    for c in &mut chunks {
        s0 += c[0] * c[0];
        s1 += c[1] * c[1];
        s2 += c[2] * c[2];
        s3 += c[3] * c[3];
    }
    for &x in chunks.remainder() {
        s0 += x * x;
    }
    ((s0 + s1) + (s2 + s3)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::nearest;
    use kmeans_util::Rng;

    fn random_matrix(n: usize, d: usize, rng: &mut Rng, scale: f64) -> PointMatrix {
        let mut m = PointMatrix::new(d);
        for _ in 0..n {
            let row: Vec<f64> = (0..d).map(|_| rng.normal() * scale).collect();
            m.push(&row).unwrap();
        }
        m
    }

    fn scalar_assign(points: &PointMatrix, centers: &PointMatrix) -> (Vec<u32>, Vec<f64>) {
        points
            .rows()
            .map(|row| {
                let (c, d2) = nearest(row, centers);
                (c as u32, d2)
            })
            .unzip()
    }

    fn assert_kernel_matches(points: &PointMatrix, centers: &PointMatrix, what: &str) {
        let (ref_labels, ref_d2) = scalar_assign(points, centers);
        let kernel = AssignKernel::new(centers);
        let n = points.len();
        let mut labels = vec![99u32; n];
        let mut d2 = vec![-1.0f64; n];
        kernel.assign(points, 0..n, &mut labels, &mut d2);
        assert_eq!(labels, ref_labels, "{what}");
        let bits: Vec<u64> = d2.iter().map(|v| v.to_bits()).collect();
        let ref_bits: Vec<u64> = ref_d2.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, ref_bits, "{what}");
    }

    #[test]
    fn assign_matches_nearest_bitwise_across_shapes() {
        let mut rng = Rng::new(11);
        for &(n, d, k) in &[
            (1usize, 1usize, 1usize),
            (7, 3, 5),
            (40, 9, 13),
            (65, 16, 20),
            (33, 2, 64),
        ] {
            let points = random_matrix(n, d, &mut rng, 3.0);
            let centers = random_matrix(k, d, &mut rng, 3.0);
            assert_kernel_matches(&points, &centers, &format!("n={n} d={d} k={k}"));
        }
    }

    #[test]
    fn update_matches_scalar_suffix_scan() {
        let mut rng = Rng::new(5);
        let points = random_matrix(50, 6, &mut rng, 2.0);
        let mut centers = random_matrix(4, 6, &mut rng, 2.0);
        let kernel0 = AssignKernel::new(&centers);
        let mut labels = vec![0u32; 50];
        let mut d2 = vec![0.0f64; 50];
        kernel0.assign(&points, 0..50, &mut labels, &mut d2);
        // Grow the center set (with deliberate duplicates of existing
        // centers to exercise carried-best ties) and update incrementally.
        let from = centers.len();
        let dup: Vec<f64> = centers.row(1).to_vec();
        centers.push(&dup).unwrap();
        for _ in 0..11 {
            let row: Vec<f64> = (0..6).map(|_| rng.normal() * 2.0).collect();
            centers.push(&row).unwrap();
        }
        // Scalar reference: the tracker-update loop.
        let (mut ref_labels, mut ref_d2) = (labels.clone(), d2.clone());
        for (i, row) in points.rows().enumerate() {
            let mut best = ref_d2[i];
            let mut best_id = u32::MAX;
            for c in from..centers.len() {
                let dist = crate::distance::sq_dist_bounded(row, centers.row(c), best);
                if dist < best {
                    best = dist;
                    best_id = c as u32;
                }
            }
            if best_id != u32::MAX {
                ref_d2[i] = best;
                ref_labels[i] = best_id;
            }
        }
        let kernel = AssignKernel::suffix(&centers, from);
        let (mut got_labels, mut got_d2) = (labels.clone(), d2.clone());
        kernel.update(&points, 0..50, &mut got_labels, &mut got_d2);
        assert_eq!(got_labels, ref_labels);
        let bits: Vec<u64> = got_d2.iter().map(|v| v.to_bits()).collect();
        let ref_bits: Vec<u64> = ref_d2.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, ref_bits);
    }

    #[test]
    fn duplicate_centers_tie_break_to_lowest_index() {
        let centers =
            PointMatrix::from_flat(vec![5.0, 5.0, 1.0, 1.0, 5.0, 5.0, 1.0, 1.0], 2).unwrap();
        // (3,3) is exactly equidistant from every center: index 0 wins.
        let points = PointMatrix::from_flat(vec![5.0, 5.0, 1.0, 1.0, 3.0, 3.0], 2).unwrap();
        assert_kernel_matches(&points, &centers, "small tie grid");
        let kernel = AssignKernel::new(&centers);
        let mut labels = vec![9u32; 3];
        let mut d2 = vec![0.0f64; 3];
        kernel.assign(&points, 0..3, &mut labels, &mut d2);
        assert_eq!(labels, vec![0, 1, 0]);
        assert_eq!(d2[0], 0.0);
    }

    #[test]
    fn duplicate_centers_tie_break_with_pruning_enabled() {
        // Same tie structure but ≥ PRUNE_MIN_CANDIDATES candidates, so
        // the annulus sweep and every filter are active: an exact-tie
        // candidate with a lower index must never be pruned away.
        let mut centers = PointMatrix::new(2);
        for _ in 0..3 {
            centers.push(&[5.0, 5.0]).unwrap();
            centers.push(&[1.0, 1.0]).unwrap();
        }
        centers.push(&[40.0, -3.0]).unwrap();
        centers.push(&[-17.0, 22.0]).unwrap();
        let points = PointMatrix::from_flat(vec![5.0, 5.0, 1.0, 1.0, 3.0, 3.0], 2).unwrap();
        let (ref_labels, _) = scalar_assign(&points, &centers);
        assert_eq!(ref_labels, vec![0, 1, 0], "scalar sanity");
        assert_kernel_matches(&points, &centers, "pruned tie grid");
    }

    #[test]
    fn pruning_fires_and_stays_exact_on_separated_data() {
        let mut rng = Rng::new(3);
        // Well-separated blobs with many centers: the norm bound must
        // actually skip work here, and results must still match bitwise.
        let mut points = PointMatrix::new(16);
        let mut centers = PointMatrix::new(16);
        for b in 0..16 {
            let base = b as f64 * 50.0;
            let c: Vec<f64> = (0..16).map(|_| base + rng.normal()).collect();
            centers.push(&c).unwrap();
            for _ in 0..20 {
                let p: Vec<f64> = (0..16).map(|_| base + rng.normal()).collect();
                points.push(&p).unwrap();
            }
        }
        assert_kernel_matches(&points, &centers, "separated blobs");
        let kernel = AssignKernel::new(&centers);
        let mut labels = vec![0u32; points.len()];
        let mut d2 = vec![0.0f64; points.len()];
        let stats = kernel.assign(&points, 0..points.len(), &mut labels, &mut d2);
        assert!(
            stats.pruned_by_norm_bound > 0,
            "norm bound pruned nothing on separated blobs: {stats:?}"
        );
        assert_eq!(
            stats.distance_computations + stats.pruned_by_norm_bound,
            (points.len() * centers.len()) as u64,
            "every pair is either computed or pruned"
        );
    }

    #[test]
    fn non_finite_inputs_match_scalar_and_disable_pruning() {
        // Below and above the pruning gate, with NaN/∞ in both points
        // and centers.
        let mut centers = PointMatrix::new(2);
        centers.push(&[f64::NAN, 0.0]).unwrap();
        centers.push(&[1.0, 1.0]).unwrap();
        centers.push(&[f64::INFINITY, 2.0]).unwrap();
        centers.push(&[3.0, 3.0]).unwrap();
        let points = PointMatrix::from_flat(
            vec![
                1.0,
                1.0,
                f64::NAN,
                5.0,
                f64::INFINITY,
                f64::INFINITY,
                3.0,
                3.0,
            ],
            2,
        )
        .unwrap();
        assert_kernel_matches(&points, &centers, "non-finite small");
        for i in 0..8 {
            centers.push(&[i as f64 * 7.0, -(i as f64)]).unwrap();
        }
        centers.push(&[f64::NEG_INFINITY, 0.0]).unwrap();
        assert_kernel_matches(&points, &centers, "non-finite pruned");
    }

    #[test]
    fn update_past_the_end_is_a_noop() {
        let centers = PointMatrix::from_flat(vec![0.0, 10.0], 1).unwrap();
        let points = PointMatrix::from_flat(vec![1.0, 9.0], 1).unwrap();
        let kernel = AssignKernel::new(&centers);
        let mut labels = vec![0u32; 2];
        let mut d2 = vec![0.0f64; 2];
        kernel.assign(&points, 0..2, &mut labels, &mut d2);
        let snapshot = (labels.clone(), d2.clone());
        let empty = AssignKernel::suffix(&centers, 2);
        let stats = empty.update(&points, 0..2, &mut labels, &mut d2);
        assert_eq!((labels, d2), snapshot);
        assert_eq!(stats, KernelStats::default());
    }

    #[test]
    fn stats_are_independent_of_row_grouping() {
        let mut rng = Rng::new(9);
        let points = random_matrix(200, 12, &mut rng, 10.0);
        let centers = random_matrix(32, 12, &mut rng, 10.0);
        let kernel = AssignKernel::new(&centers);
        let mut labels = vec![0u32; 200];
        let mut d2 = vec![0.0f64; 200];
        let whole = kernel.assign(&points, 0..200, &mut labels, &mut d2);
        // Same rows, processed in uneven pieces: identical counters.
        let mut pieced = KernelStats::default();
        for (start, end) in [(0usize, 13usize), (13, 130), (130, 200)] {
            pieced.absorb(kernel.assign(
                &points,
                start..end,
                &mut labels[start..end],
                &mut d2[start..end],
            ));
        }
        assert_eq!(whole, pieced);
    }

    #[test]
    #[should_panic(expected = "no centers")]
    fn empty_centers_panic() {
        let centers = PointMatrix::new(1);
        let points = PointMatrix::from_flat(vec![0.0], 1).unwrap();
        AssignKernel::new(&centers).assign(&points, 0..1, &mut [0], &mut [0.0]);
    }
}
