//! Lloyd's iteration — the local-search phase run on top of every
//! initialization (§3.1), with the iteration accounting Table 6 reports.
//!
//! Each iteration is one parallel assignment pass
//! ([`crate::assign::assign_and_sum`]) followed by a
//! centroid update. Convergence is declared when no point changes cluster
//! (the paper's "stable set of centers") or when the relative cost
//! improvement drops below `tol` (useful to emulate the paper's capped
//! parallel `Random` baseline, which it bounded at 20 iterations).
//!
//! Empty clusters (possible with duplicate seeds or adversarial data) are
//! repaired deterministically by moving the empty center onto the point
//! currently farthest from its assigned center — the standard
//! "split the worst cluster" heuristic.

use crate::assign::assign_weighted;
use crate::error::KMeansError;
use kmeans_data::PointMatrix;
use kmeans_par::Executor;

/// Configuration of the Lloyd loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LloydConfig {
    /// Hard iteration cap (paper's parallel Random baseline: 20; this
    /// workspace's default: 300, effectively "to convergence" on the
    /// paper's datasets).
    pub max_iterations: usize,
    /// Stop when `(cost_prev − cost) ≤ tol · cost_prev`. `0.0` means run to
    /// assignment stability.
    pub tol: f64,
}

impl Default for LloydConfig {
    fn default() -> Self {
        LloydConfig {
            max_iterations: 300,
            tol: 0.0,
        }
    }
}

impl LloydConfig {
    /// Validates the configuration. Public so distributed frontends
    /// enforce the same contract before the first broadcast.
    pub fn validate(&self) -> Result<(), KMeansError> {
        if self.max_iterations == 0 {
            return Err(KMeansError::InvalidConfig(
                "max_iterations must be at least 1".into(),
            ));
        }
        if !self.tol.is_finite() || self.tol < 0.0 {
            return Err(KMeansError::InvalidConfig(format!(
                "tol must be finite and non-negative, got {}",
                self.tol
            )));
        }
        Ok(())
    }
}

/// Per-iteration record (cost is measured *under the centers entering the
/// iteration*, i.e. before the centroid update).
#[derive(Clone, Copy, Debug)]
pub struct IterationStats {
    /// Potential at assignment time.
    pub cost: f64,
    /// Points that changed cluster relative to the previous iteration.
    pub reassigned: u64,
    /// Clusters that came up empty and were reseeded.
    pub reseeded: usize,
}

/// Outcome of a Lloyd run.
#[derive(Clone, Debug)]
pub struct LloydResult {
    /// Final centers.
    pub centers: PointMatrix,
    /// Final assignment (consistent with `centers`).
    pub labels: Vec<u32>,
    /// Final potential (consistent with `centers` and `labels`).
    pub cost: f64,
    /// Iterations executed — the Table 6 quantity.
    pub iterations: usize,
    /// Whether the run converged before hitting `max_iterations`.
    pub converged: bool,
    /// Per-iteration history.
    pub history: Vec<IterationStats>,
    /// Full assignment passes executed, including the closing relabel
    /// pass when the loop did not end on a stable assignment. Distance
    /// evaluations *offered* = `n · k · assign_passes`; of those,
    /// `pruned_by_norm_bound` were skipped without touching coordinates.
    pub assign_passes: usize,
    /// Point–center pairs the assignment kernel skipped via its `O(1)`
    /// lower bounds — the norm bound `(‖x‖−‖c‖)²` and the coordinate
    /// gaps, wholesale sorted-sweep stops included — summed over every
    /// pass (the closing relabel included). Deterministic across thread
    /// counts, block sizes, *and* worker counts: distributed workers
    /// ship their kernel counters in the partials frames, so the fold
    /// equals the single-node value.
    pub pruned_by_norm_bound: u64,
}

/// Input contract shared by every refinement entry point (plain and
/// weighted Lloyd, Hamerly, mini-batch, the pipeline refiners): non-empty
/// data, `1 ≤ |centers| ≤ n`, matching dimensionality.
pub(crate) fn validate_refine_inputs(
    points: &PointMatrix,
    centers: &PointMatrix,
) -> Result<(), KMeansError> {
    if points.is_empty() {
        return Err(KMeansError::EmptyInput);
    }
    if centers.is_empty() || centers.len() > points.len() {
        return Err(KMeansError::InvalidK {
            k: centers.len(),
            n: points.len(),
        });
    }
    if points.dim() != centers.dim() {
        return Err(KMeansError::DimensionMismatch {
            expected: points.dim(),
            got: centers.dim(),
        });
    }
    Ok(())
}

/// Runs Lloyd's iteration from the given initial centers.
///
/// Thin wrapper over the backend-generic
/// [`drive_lloyd`](crate::driver::drive_lloyd) on an
/// [`InMemoryBackend`](crate::driver::InMemoryBackend): the
/// assignment/update round loop exists once, shared bit-for-bit with the
/// chunked and distributed execution modes.
///
/// # Errors
///
/// Fails on empty input, dimension mismatch, or invalid configuration.
pub fn lloyd(
    points: &PointMatrix,
    initial_centers: &PointMatrix,
    config: &LloydConfig,
    exec: &Executor,
) -> Result<LloydResult, KMeansError> {
    let mut backend = crate::driver::InMemoryBackend::new(points, exec);
    crate::driver::drive_lloyd(&mut backend, initial_centers, config)
}

/// Weighted Lloyd iterations on a (small) weighted point set — used to
/// refine the Step 8 reclustering of k-means|| and by the streaming
/// baselines. Sequential; stops early on assignment stability. Empty
/// clusters keep their previous center.
pub fn weighted_lloyd(
    points: &PointMatrix,
    weights: &[f64],
    centers: PointMatrix,
    iterations: usize,
) -> PointMatrix {
    weighted_lloyd_traced(points, weights, centers, iterations, 0.0).centers
}

/// Accounting returned by [`weighted_lloyd_traced`].
#[derive(Clone, Debug)]
pub struct WeightedLloydTrace {
    /// Refined centers.
    pub centers: PointMatrix,
    /// Centroid updates applied.
    pub iterations: usize,
    /// Whether assignment stability (or the `tol` criterion) was reached
    /// within the iteration budget.
    pub converged: bool,
    /// Full weighted assignment passes executed (the stability-detecting
    /// pass included). Distance evaluations = `n · k · assign_passes`.
    pub assign_passes: usize,
    /// `(labels, cost)` consistent with `centers`, available when the
    /// loop ended on a stable assignment (no centroid update after the
    /// last pass) — callers then need no closing relabel pass.
    pub stable: Option<(Vec<u32>, f64)>,
}

/// [`weighted_lloyd`] with a stopping tolerance and accounting.
/// `tol = 0` stops on assignment stability only and reproduces
/// [`weighted_lloyd`]'s center trajectory bit-for-bit (the plain
/// function is a thin wrapper); `tol > 0` additionally stops once the
/// relative weighted-cost improvement drops below `tol`.
pub fn weighted_lloyd_traced(
    points: &PointMatrix,
    weights: &[f64],
    mut centers: PointMatrix,
    iterations: usize,
    tol: f64,
) -> WeightedLloydTrace {
    let d = points.dim();
    let mut prev_labels: Option<Vec<u32>> = None;
    let mut prev_cost = f64::INFINITY;
    let mut updates = 0usize;
    let mut passes = 0usize;
    let mut converged = false;
    let mut stable = None;
    for _ in 0..iterations {
        let (labels, sums, wsum, cost) = assign_weighted(points, weights, &centers);
        passes += 1;
        if prev_labels.as_ref() == Some(&labels) {
            converged = true;
            stable = Some((labels, cost));
            break;
        }
        for c in 0..centers.len() {
            if wsum[c] > 0.0 {
                let inv = 1.0 / wsum[c];
                let dst = centers.row_mut(c);
                for (j, slot) in dst.iter_mut().enumerate() {
                    *slot = sums[c * d + j] * inv;
                }
            }
        }
        updates += 1;
        prev_labels = Some(labels);
        if tol > 0.0 && prev_cost.is_finite() && prev_cost - cost <= tol * prev_cost {
            converged = true;
            break;
        }
        prev_cost = cost;
    }
    WeightedLloydTrace {
        centers,
        iterations: updates,
        converged,
        assign_passes: passes,
        stable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmeans_par::Parallelism;

    fn blobs_2d() -> PointMatrix {
        // Two 2-D blobs around (0,0) and (10,10), 16 points each.
        let mut m = PointMatrix::new(2);
        for i in 0..16 {
            let dx = (i % 4) as f64 * 0.1;
            let dy = (i / 4) as f64 * 0.1;
            m.push(&[dx, dy]).unwrap();
        }
        for i in 0..16 {
            let dx = (i % 4) as f64 * 0.1;
            let dy = (i / 4) as f64 * 0.1;
            m.push(&[10.0 + dx, 10.0 + dy]).unwrap();
        }
        m
    }

    #[test]
    fn converges_to_blob_centroids() {
        let points = blobs_2d();
        let init = PointMatrix::from_flat(vec![1.0, 1.0, 9.0, 9.0], 2).unwrap();
        let result = lloyd(
            &points,
            &init,
            &LloydConfig::default(),
            &Executor::sequential(),
        )
        .unwrap();
        assert!(result.converged);
        assert!(result.iterations <= 3);
        // Centroid of each blob is (0.15, 0.15) offset.
        let mut xs: Vec<f64> = result.centers.rows().map(|r| r[0]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((xs[0] - 0.15).abs() < 1e-9);
        assert!((xs[1] - 10.15).abs() < 1e-9);
        // Labels and cost are self-consistent.
        let expected_cost: f64 = {
            let (_, sums) =
                crate::assign::assign_and_sum(&points, &result.centers, &Executor::sequential());
            sums.cost
        };
        assert!((result.cost - expected_cost).abs() < 1e-9);
        assert_eq!(result.labels.len(), 32);
    }

    #[test]
    fn cost_is_monotone_nonincreasing() {
        let points = blobs_2d();
        // Bad init: both centers in one blob.
        let init = PointMatrix::from_flat(vec![0.0, 0.0, 0.3, 0.3], 2).unwrap();
        let result = lloyd(
            &points,
            &init,
            &LloydConfig::default(),
            &Executor::sequential(),
        )
        .unwrap();
        for w in result.history.windows(2) {
            assert!(
                w[1].cost <= w[0].cost + 1e-9,
                "cost increased: {} → {}",
                w[0].cost,
                w[1].cost
            );
        }
        assert!(result.converged);
    }

    #[test]
    fn max_iterations_caps_the_run() {
        let points = blobs_2d();
        let init = PointMatrix::from_flat(vec![0.0, 0.0, 0.3, 0.3], 2).unwrap();
        let config = LloydConfig {
            max_iterations: 1,
            tol: 0.0,
        };
        let result = lloyd(&points, &init, &config, &Executor::sequential()).unwrap();
        assert_eq!(result.iterations, 1);
        assert!(!result.converged);
    }

    #[test]
    fn tolerance_stops_early() {
        let points = blobs_2d();
        let init = PointMatrix::from_flat(vec![1.0, 1.0, 9.0, 9.0], 2).unwrap();
        let config = LloydConfig {
            max_iterations: 100,
            tol: 0.5, // huge tolerance: stop after the first update
        };
        let result = lloyd(&points, &init, &config, &Executor::sequential()).unwrap();
        assert!(result.converged);
        assert!(result.iterations <= 2);
    }

    #[test]
    fn tol_stop_reports_cost_of_the_returned_centers() {
        // Regression: a tol-based stop applies the centroid update before
        // breaking, so the reported (labels, cost) must be recomputed
        // against the *final* centers — not the pre-update assignment.
        let points = blobs_2d();
        let init = PointMatrix::from_flat(vec![0.0, 0.0, 0.3, 0.3], 2).unwrap();
        let config = LloydConfig {
            max_iterations: 100,
            tol: 1.0, // always triggers after the first update
        };
        let exec = Executor::sequential();
        let result = lloyd(&points, &init, &config, &exec).unwrap();
        assert!(result.converged);
        let (expected_labels, sums) =
            crate::assign::assign_and_sum(&points, &result.centers, &exec);
        assert_eq!(result.labels, expected_labels);
        assert!(
            (result.cost - sums.cost).abs() <= 1e-12 * (1.0 + sums.cost),
            "reported {} vs recomputed {}",
            result.cost,
            sums.cost
        );
        // Pass accounting includes the closing relabel.
        assert_eq!(result.assign_passes, result.iterations + 1);
    }

    #[test]
    fn stable_exit_needs_no_closing_pass() {
        let points = blobs_2d();
        let init = PointMatrix::from_flat(vec![1.0, 1.0, 9.0, 9.0], 2).unwrap();
        let result = lloyd(
            &points,
            &init,
            &LloydConfig::default(),
            &Executor::sequential(),
        )
        .unwrap();
        assert!(result.converged);
        assert_eq!(result.assign_passes, result.iterations);
    }

    #[test]
    fn weighted_traced_honors_tol_and_counts_passes() {
        // Two far blobs, bad init: with tol = 1.0 the loop stops after one
        // update; with tol = 0 it runs to stability.
        let points = PointMatrix::from_flat(vec![0.0, 1.0, 10.0, 11.0], 1).unwrap();
        let w = [1.0, 1.0, 1.0, 1.0];
        let init = PointMatrix::from_flat(vec![0.0, 2.0], 1).unwrap();
        let eager = weighted_lloyd_traced(&points, &w, init.clone(), 50, 1.0);
        assert!(eager.converged);
        assert!(eager.iterations <= 2);
        let full = weighted_lloyd_traced(&points, &w, init.clone(), 50, 0.0);
        assert!(full.converged);
        // Stability costs one extra detecting pass beyond the updates.
        assert_eq!(full.assign_passes, full.iterations + 1);
        // And tol = 0 matches the plain wrapper bit-for-bit.
        assert_eq!(full.centers, weighted_lloyd(&points, &w, init, 50));
    }

    #[test]
    fn empty_cluster_is_reseeded_to_far_point() {
        let points = blobs_2d();
        // Three centers, two glued together far from everything: at least
        // one will be empty initially.
        let init =
            PointMatrix::from_flat(vec![0.0, 0.0, -500.0, -500.0, -500.0, -500.0], 2).unwrap();
        let result = lloyd(
            &points,
            &init,
            &LloydConfig::default(),
            &Executor::sequential(),
        )
        .unwrap();
        assert!(result.history[0].reseeded >= 1, "no reseed recorded");
        assert!(result.converged);
        // After repair every cluster should be non-empty.
        let mut counts = [0u32; 3];
        for &l in &result.labels {
            counts[l as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "counts {counts:?}");
    }

    #[test]
    fn identical_across_thread_counts() {
        let points = blobs_2d();
        let init = PointMatrix::from_flat(vec![0.0, 0.0, 0.3, 0.3], 2).unwrap();
        let run = |par: Parallelism| {
            lloyd(
                &points,
                &init,
                &LloydConfig::default(),
                &Executor::new(par).with_shard_size(8),
            )
            .unwrap()
        };
        let reference = run(Parallelism::Sequential);
        for t in [2, 4] {
            let got = run(Parallelism::Threads(t));
            assert_eq!(got.labels, reference.labels);
            assert_eq!(got.iterations, reference.iterations);
            assert_eq!(got.cost.to_bits(), reference.cost.to_bits());
            assert_eq!(got.centers, reference.centers);
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let points = blobs_2d();
        let init = PointMatrix::from_flat(vec![0.0, 0.0], 2).unwrap();
        let exec = Executor::sequential();
        assert!(matches!(
            lloyd(&PointMatrix::new(2), &init, &LloydConfig::default(), &exec),
            Err(KMeansError::EmptyInput)
        ));
        let bad_dim = PointMatrix::from_flat(vec![0.0], 1).unwrap();
        assert!(matches!(
            lloyd(&points, &bad_dim, &LloydConfig::default(), &exec),
            Err(KMeansError::DimensionMismatch { .. })
        ));
        let bad_config = LloydConfig {
            max_iterations: 0,
            tol: 0.0,
        };
        assert!(lloyd(&points, &init, &bad_config, &exec).is_err());
        let bad_tol = LloydConfig {
            max_iterations: 1,
            tol: -1.0,
        };
        assert!(lloyd(&points, &init, &bad_tol, &exec).is_err());
    }

    #[test]
    fn weighted_lloyd_moves_to_weighted_centroid() {
        let points = PointMatrix::from_flat(vec![0.0, 10.0], 1).unwrap();
        let centers = PointMatrix::from_flat(vec![4.0], 1).unwrap();
        let out = weighted_lloyd(&points, &[1.0, 3.0], centers, 10);
        // Weighted centroid: (0·1 + 10·3) / 4 = 7.5.
        assert!((out.row(0)[0] - 7.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_lloyd_zero_iterations_is_identity() {
        let points = PointMatrix::from_flat(vec![0.0, 10.0], 1).unwrap();
        let centers = PointMatrix::from_flat(vec![4.0], 1).unwrap();
        let out = weighted_lloyd(&points, &[1.0, 1.0], centers.clone(), 0);
        assert_eq!(out, centers);
    }

    #[test]
    fn weighted_lloyd_empty_cluster_keeps_center() {
        let points = PointMatrix::from_flat(vec![0.0, 1.0], 1).unwrap();
        let centers = PointMatrix::from_flat(vec![0.5, 100.0], 1).unwrap();
        let out = weighted_lloyd(&points, &[1.0, 1.0], centers, 5);
        assert_eq!(out.row(1)[0], 100.0, "empty cluster center moved");
    }
}
