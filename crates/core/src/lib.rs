//! **Scalable K-Means++ (k-means||)** — the core library of this
//! reproduction of Bahmani, Moseley, Vattani, Kumar & Vassilvitskii,
//! *"Scalable K-Means++"*, PVLDB 5(7), 2012.
//!
//! k-means++ seeding gives provably good initial centers but needs `k`
//! sequential passes over the data. **k-means||** ([`init::kmeans_parallel`])
//! replaces them with `r ≈ 5` rounds that each sample `ℓ = Θ(k)` points in
//! parallel with probability `ℓ·d²(x,C)/φ_X(C)`, then reclusters the
//! weighted `O(ℓ·r)` candidates down to `k` with weighted k-means++
//! (Theorem 1: an O(α)-approximation when an α-approximate reclusterer is
//! used).
//!
//! Module map — the crate is organized around the two-stage **pipeline
//! architecture**: any seeding strategy ([`pipeline::Initializer`]) feeds
//! any refinement strategy ([`pipeline::Refiner`]) through the
//! [`model::KMeans`] builder.
//!
//! * [`distance`], [`cost`], [`assign`] — the `d²`/potential kernels and
//!   the incremental [`cost::CostTracker`] all seeding builds on.
//! * [`kernel`] — the tiled, register-blocked, norm-bound-pruned batch
//!   assignment kernel every consumer above routes through — bit-identical
//!   to the scalar path for any tile size (the hot-path engine of the
//!   whole workspace).
//! * [`chunked`] — the out-of-core kernels: every pass re-expressed as one
//!   scan over a block-resident [`kmeans_data::ChunkedSource`] (§1's
//!   "massive data" premise), bit-identical to the in-memory paths.
//! * [`driver`] — the backend-generic round drivers: **one**
//!   implementation of each algorithm's round loop (k-means||, Lloyd,
//!   mini-batch, random seeding), executable on any
//!   [`driver::RoundBackend`] — in-memory, chunked, or the distributed
//!   cluster backend in `kmeans-cluster`.
//! * [`pipeline`] — the object-safe [`pipeline::Initializer`] /
//!   [`pipeline::Refiner`] traits, the unified [`pipeline::RefineResult`]
//!   (with distance-evaluation accounting), and the core implementations:
//!   `Random`, `KMeansPlusPlus`, `KMeansParallel`, `AfkMc2` seeders and
//!   `Lloyd`, `HamerlyLloyd`, `MiniBatch`, `NoRefine` refiners. The
//!   streaming seeders (Partition, coreset tree) implement the same
//!   traits from `kmeans-streaming`.
//! * [`init`] — the seeding algorithms themselves: `Random`, `k-means++`
//!   (Algorithm 1), **`k-means||`** (Algorithm 2) with every knob the
//!   paper's §5 sweeps, plus AFK-MC². [`init::InitMethod`] survives as a
//!   thin enum that converts `Into<Box<dyn pipeline::Initializer>>`.
//! * [`lloyd`] — Lloyd's iteration (parallel, with iteration accounting
//!   and empty-cluster repair) and the weighted variant used by Step 8.
//! * [`accel`] — Hamerly's bounds-accelerated Lloyd (exact, fewer
//!   distance computations; extension).
//! * [`minibatch`] — Sculley's mini-batch k-means (extension; paper
//!   reference \[31]).
//! * [`metrics`] — purity / NMI against ground-truth labels.
//! * [`model`] — the [`model::KMeans`] builder tying it all together:
//!   `.init(…)`, `.refine(…)`, `.weights(…)`, `.parallelism(…)`.
//!
//! Determinism: every algorithm is a pure function of its inputs, a 64-bit
//! seed, and the executor's shard size. Worker counts never change results
//! (see `kmeans-par`). The out-of-core paths preserve this bit-for-bit:
//! block size is *not* part of the reproducibility key.
//!
//! Paper-section map of the public modules:
//!
//! | module | paper anchor |
//! |--------|--------------|
//! | [`distance`], [`cost`] | `d²(x, C)`, potential `φ_X(C)` — §2 notation, §3.1 |
//! | [`init`] (`random`) | §4.2 baseline |
//! | [`init`] (`kmeanspp`) | Algorithm 1 (Arthur & Vassilvitskii) |
//! | [`init`] (`parallel`) | **Algorithm 2 — k-means\|\|**, §3.3–§3.5, §5 knobs |
//! | [`init`] (`afkmc2`) | extension (Bachem et al. 2016) |
//! | [`lloyd`] | §3.1 Lloyd iteration; Step 8's weighted variant |
//! | [`accel`] | extension (Hamerly 2010): exact pruned Lloyd |
//! | [`minibatch`] | §7's question about Sculley \[31] |
//! | [`assign`] | the §3.5 MapReduce assignment round |
//! | [`kernel`] | the batch nearest-center engine behind all of the above |
//! | [`chunked`] | §1's memory premise: every pass as one block scan |
//! | [`driver`] | §3.5's round structure as a backend-generic abstraction |
//! | [`metrics`] | §5 evaluation measures |
//! | [`pipeline`], [`model`] | the seeding/refinement split of §1 as an API |

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod accel;
pub mod assign;
pub mod chunked;
pub mod cost;
pub mod distance;
pub mod driver;
pub mod error;
pub mod init;
pub mod kernel;
pub mod lloyd;
pub mod metrics;
pub mod minibatch;
pub mod model;
pub mod pipeline;
pub mod record;

pub use error::KMeansError;
pub use init::{InitMethod, InitResult, InitStats, KMeansParallelConfig};
pub use lloyd::{LloydConfig, LloydResult};
pub use model::{KMeans, KMeansModel, ModelParts, PreparedPredictor};
pub use pipeline::{Initializer, RefineResult, Refiner};
pub use record::RecordingBackend;
