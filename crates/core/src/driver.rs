//! The backend-generic round drivers: **one** implementation of each of
//! the paper's data-parallel algorithms, executable on any
//! [`RoundBackend`].
//!
//! The paper's algorithms are defined as sequences of data-parallel
//! rounds — broadcast the new candidates, sample by D², fold partial
//! sums — and before this module the workspace carried three
//! hand-synchronized copies of each: the in-memory originals, their
//! `_chunked` twins, and the coordinator loops in `kmeans-cluster`
//! (which PR 3 documented as mirroring the chunked twins "line for
//! line"). [`RoundBackend`] captures exactly the per-round primitives
//! those three execution modes already shared, in the spirit of the MPC
//! round-primitive formulation of k-means (Jiang et al.), so each
//! algorithm's round logic now exists in exactly one function:
//!
//! * [`drive_kmeans_parallel`] — Algorithm 2 (k-means\|\|),
//! * [`drive_random_init`] — uniform seeding,
//! * [`drive_lloyd`] — Lloyd's iteration (§3.1),
//! * [`drive_minibatch`] — Sculley's mini-batch k-means,
//! * [`drive_label_pass`] — one labeling/cost pass (seed-only studies).
//!
//! Backends:
//!
//! * [`InMemoryBackend`] — a resident [`PointMatrix`]; the in-memory
//!   entry points (`kmeans_parallel`, `lloyd`, `minibatch_kmeans`) are
//!   thin wrappers over it.
//! * [`ChunkedBackend`] — a block-resident
//!   [`ChunkedSource`]; behind
//!   [`Initializer::init_chunked`](crate::pipeline::Initializer::init_chunked)
//!   / [`Refiner::refine_chunked`](crate::pipeline::Refiner::refine_chunked).
//! * `ClusterBackend` (in `kmeans-cluster`) — a coordinator's worker
//!   cluster speaking the SKW1 wire protocol.
//!
//! **Bit-parity contract.** A driver's outcome is a pure function of
//! `(data, k, config, seed, executor shard size)` — never of the
//! backend. Three clauses make that structural (`tests/driver_parity.rs`
//! pins it over a backend × block-size × worker-count × thread grid):
//!
//! 1. Per-point arithmetic (tracker updates, nearest-center scans,
//!    centroid contributions) is order-insensitive, so each backend
//!    computes it with whatever parallelism and blocking it has.
//! 2. Order-sensitive *scalar* decisions (first center, top-up draws,
//!    the Step 8 recluster, mini-batch index draws) run **here**, on the
//!    driver side, on the same RNG streams for every backend (tags
//!    20/21/30/40; per-shard sampling tags 31/32 are derived from
//!    *global* shard indices inside the backends).
//! 3. Order-sensitive *folds* stay shard-ordered left folds: backends
//!    only ever produce per-shard partials of the global shard grid, and
//!    every fold happens on the driver side of the primitive (the
//!    tracker potentials, [`RoundBackend::assign`]'s
//!    accumulation-shard fold).

use crate::assign::{assign_and_sum, ClusterSums};
use crate::chunked::{
    assign_partials_chunked, fold_accum_shards, gather_rows, validate_refine_inputs_chunked,
    validate_source, ChunkedCostTracker,
};
use crate::cost::{potential, CostTracker};
use crate::error::KMeansError;
use crate::init::{
    exact_sample_keys, exact_sample_merge, sample_bernoulli, InitResult, InitStats,
    KMeansParallelConfig, Recluster, Rounds, SamplingMode, TopUp,
};
use crate::init::{validate, weighted_kmeanspp};
use crate::kernel::{AssignKernel, KernelStats};
use crate::lloyd::{validate_refine_inputs, IterationStats, LloydConfig, LloydResult};
use crate::minibatch::MiniBatchConfig;
use kmeans_data::{ChunkedSource, PointMatrix};
use kmeans_par::Executor;
use kmeans_util::sampling::uniform_distinct;
use kmeans_util::timing::Stopwatch;
use kmeans_util::Rng;

/// Which execution mode a [`RoundBackend`] represents — used only for
/// typed rejections (stages without a formulation on that mode) and
/// reporting, never for algorithmic decisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// A resident [`PointMatrix`].
    InMemory,
    /// A single-node block-resident [`ChunkedSource`].
    Chunked,
    /// A coordinator's view of a worker cluster.
    Distributed,
}

impl BackendKind {
    /// Stable lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::InMemory => "in-memory",
            BackendKind::Chunked => "chunked",
            BackendKind::Distributed => "distributed",
        }
    }
}

/// Which Step 4 sample a fused tracker round should speculate on behalf
/// of the *next* driver round (see
/// [`RoundBackend::tracker_update_sampled`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SampleSpec {
    /// Line 4 verbatim: independent Bernoulli draws with
    /// `p = min(1, ℓ·d²/φ)`.
    Bernoulli {
        /// Oversampling ℓ.
        l: f64,
    },
    /// §5.3 exact-ℓ: per-shard Efraimidis–Spirakis top-`m` keys, merged
    /// globally by the driver.
    ExactKeys {
        /// Global sample size `m`.
        m: usize,
    },
}

/// The sample produced by a fused tracker round.
#[derive(Clone, Debug)]
pub enum SampleOut {
    /// Bernoulli picks: ascending global indices plus their rows.
    Picked {
        /// Global row indices, ascending.
        indices: Vec<usize>,
        /// The corresponding rows, in the same order.
        rows: PointMatrix,
    },
    /// Exact-ℓ keys `(key, global index)` — the driver merges them with
    /// [`exact_sample_merge`] and gathers the winners' rows.
    Keys(Vec<(f64, usize)>),
}

/// Whether a fused assignment pass ([`RoundBackend::assign_fused`])
/// should also return the labels it stored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LabelFetch {
    /// Labels stay backend-resident (mid-loop Lloyd iterations).
    Skip,
    /// Return labels only if the pass was stable (`reassigned == 0`) —
    /// a distributed backend has each worker ship its labels exactly
    /// when *locally* stable, so a globally stable pass always comes
    /// back with labels and an unstable one pays nothing.
    IfStable,
    /// Always return the labels (closing relabel, label-only passes).
    Always,
}

/// The per-round primitives shared by the in-memory, chunked, and
/// distributed execution modes. Everything a backend returns is either
/// order-insensitive per-point data or per-shard partials of the
/// *global* shard grid; every order-sensitive fold and every scalar RNG
/// decision lives in the drivers.
///
/// State carried between calls (and between a seeding driver and the
/// refinement driver that follows it on the same backend): the D²/nearest
/// tracker slices built by [`RoundBackend::tracker_init`], and the labels
/// of the last [`RoundBackend::assign`] pass.
pub trait RoundBackend {
    /// Which execution mode this backend is (for typed rejections).
    fn kind(&self) -> BackendKind;

    /// Total number of rows.
    fn len(&self) -> usize;

    /// Whether the backend serves no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row dimensionality.
    fn dim(&self) -> usize;

    /// The local block-resident source (and the executor its passes run
    /// on) behind this backend, when it has one — `None` for remote
    /// backends. Stages with a block-streaming but not fully
    /// round-generic formulation (k-means++'s sequential D² draws, the
    /// streaming Partition/coreset seeders) use this to run on local
    /// backends and reject remote ones with a typed error.
    fn local_source(&self) -> Option<(&dyn ChunkedSource, &Executor)> {
        None
    }

    /// Validates the seeding input contract for `k` clusters — the same
    /// checks the legacy per-mode entry points performed (the in-memory
    /// backend includes the upfront finiteness scan; block-backed
    /// backends defer it to their first full pass, which reports the
    /// same global `NonFiniteData` index).
    fn validate(&self, k: usize) -> Result<(), KMeansError>;

    /// Validates the refinement input contract (non-empty data,
    /// `1 ≤ |centers| ≤ n`, matching dimensionality).
    fn validate_refine(&self, centers: &PointMatrix) -> Result<(), KMeansError>;

    /// Fetches the rows at `indices` (any order, duplicates allowed),
    /// preserving the request order.
    fn gather_rows(&mut self, indices: &[usize]) -> Result<PointMatrix, KMeansError>;

    /// [`RoundBackend::gather_rows`] into a caller-provided matrix
    /// (cleared first), so steady-state gather loops — mini-batch draws
    /// one batch per step — can reuse a single buffer. The default
    /// delegates to `gather_rows`; local backends override it to be
    /// allocation-free per call in steady state.
    fn gather_rows_into(
        &mut self,
        indices: &[usize],
        out: &mut PointMatrix,
    ) -> Result<(), KMeansError> {
        *out = self.gather_rows(indices)?;
        Ok(())
    }

    /// Broadcast of an initial candidate set: (re)builds the backend's
    /// resident `d²`/nearest tracker state and returns the global
    /// potential ψ (the shard-ordered fold of per-shard partials).
    fn tracker_init(&mut self, centers: &PointMatrix) -> Result<f64, KMeansError>;

    /// Broadcast of newly appended candidates only (`from` = index of
    /// the first new candidate). Returns the updated global potential φ.
    fn tracker_update(&mut self, from: usize, new_rows: &PointMatrix) -> Result<f64, KMeansError>;

    /// Step 4, Bernoulli form: every point independently with
    /// probability `min(1, ℓ·d²/φ)` against the tracked `d²`, with the
    /// per-shard RNG streams of tag 31 derived from **global** shard
    /// indices. Returns ascending global indices plus their rows.
    fn sample_bernoulli(
        &mut self,
        round: usize,
        seed: u64,
        l: f64,
        phi: f64,
    ) -> Result<(Vec<usize>, PointMatrix), KMeansError>;

    /// Step 4, exact-ℓ form: per-shard Efraimidis–Spirakis top-`m` keys
    /// (tag 32, global shard indices), `(key, global index)` — the
    /// driver merges them globally with
    /// [`exact_sample_merge`].
    fn sample_exact_keys(
        &mut self,
        round: usize,
        seed: u64,
        m: usize,
    ) -> Result<Vec<(f64, usize)>, KMeansError>;

    /// The full resident `d²` array in global row order — the one-shot
    /// O(n) transfer behind the D² top-up (taken only when `r·ℓ < k`
    /// under-sampled).
    fn gather_d2(&mut self) -> Result<Vec<f64>, KMeansError>;

    /// Step 7: candidate weights as a histogram over the tracked nearest
    /// ids (`m` = candidate count, cross-checked by remote backends).
    fn candidate_weights(&mut self, m: usize) -> Result<Vec<f64>, KMeansError>;

    /// One assignment pass against `centers`: stores the labels, and
    /// returns the number of rows whose label changed relative to the
    /// previous pass (first pass: all rows) plus the accumulation-shard
    /// fold of the pass — bit-identical to the in-memory
    /// [`assign_and_sum`] on the same data and
    /// executor, [`KernelStats`] included.
    fn assign(&mut self, centers: &PointMatrix) -> Result<(u64, ClusterSums), KMeansError>;

    /// The labels stored by the last [`RoundBackend::assign`] pass, in
    /// global row order.
    fn fetch_labels(&mut self) -> Result<Vec<u32>, KMeansError>;

    /// The potential `φ_X(C)` of `centers` (with the finiteness check on
    /// block-backed backends) — the seed-cost pass.
    fn potential(&mut self, centers: &PointMatrix) -> Result<f64, KMeansError>;

    /// Cumulative wire traffic (sent + received bytes) this backend has
    /// moved, when it moves any — `None` for local backends. The
    /// recording wrapper ([`crate::record::RecordingBackend`]) diffs
    /// this across each round call to attach per-round wire bytes to its
    /// spans; the counter must therefore be monotonically non-decreasing
    /// and include traffic on retired connections.
    fn wire_bytes(&self) -> Option<u64> {
        None
    }

    // --- Fused rounds -----------------------------------------------------
    //
    // Each fused primitive is semantically the sequence of single
    // primitives its default implementation runs — local backends keep
    // these defaults, a distributed backend overrides them to ship the
    // whole conversation as one compound frame per worker (one request/
    // reply cycle instead of two or three). The drivers call only the
    // fused forms, so the round count of a distributed fit is set here.

    /// [`RoundBackend::tracker_init`] fused with the Step 4 sample for
    /// `round` (drawn against the freshly built tracker). Returns ψ and,
    /// when `spec` is given, the sample. The sample is *speculative*: the
    /// driver discards it when ψ ≤ 0 ends the round loop, which is safe
    /// because the per-shard sampling streams (tags 31/32) are derived
    /// per `(seed, round, shard)`, never carried across rounds.
    fn tracker_init_sampled(
        &mut self,
        centers: &PointMatrix,
        round: usize,
        seed: u64,
        spec: Option<SampleSpec>,
    ) -> Result<(f64, Option<SampleOut>), KMeansError> {
        let psi = self.tracker_init(centers)?;
        let out = match spec {
            None => None,
            Some(SampleSpec::Bernoulli { l }) => {
                let (indices, rows) = self.sample_bernoulli(round, seed, l, psi)?;
                Some(SampleOut::Picked { indices, rows })
            }
            Some(SampleSpec::ExactKeys { m }) => {
                Some(SampleOut::Keys(self.sample_exact_keys(round, seed, m)?))
            }
        };
        Ok((psi, out))
    }

    /// [`RoundBackend::tracker_update`] fused with the Step 4 sample for
    /// `round` (drawn against the *updated* tracker — exactly what the
    /// next driver round needs). Same speculation contract as
    /// [`RoundBackend::tracker_init_sampled`].
    fn tracker_update_sampled(
        &mut self,
        from: usize,
        new_rows: &PointMatrix,
        round: usize,
        seed: u64,
        spec: Option<SampleSpec>,
    ) -> Result<(f64, Option<SampleOut>), KMeansError> {
        let phi = self.tracker_update(from, new_rows)?;
        let out = match spec {
            None => None,
            Some(SampleSpec::Bernoulli { l }) => {
                let (indices, rows) = self.sample_bernoulli(round, seed, l, phi)?;
                Some(SampleOut::Picked { indices, rows })
            }
            Some(SampleSpec::ExactKeys { m }) => {
                Some(SampleOut::Keys(self.sample_exact_keys(round, seed, m)?))
            }
        };
        Ok((phi, out))
    }

    /// The closing tracker update fused with Step 7's candidate weights
    /// (`m` = candidate count *after* this update) — the last k-means||
    /// round, when the driver already knows no top-up will follow.
    fn tracker_update_weighted(
        &mut self,
        from: usize,
        new_rows: &PointMatrix,
        m: usize,
    ) -> Result<Vec<f64>, KMeansError> {
        self.tracker_update(from, new_rows)?;
        self.candidate_weights(m)
    }

    /// [`RoundBackend::assign`] fused with the label fetch, per `fetch` —
    /// the closing relabel and the stable-exit pass come back with their
    /// labels instead of paying a separate [`RoundBackend::fetch_labels`]
    /// cycle.
    fn assign_fused(
        &mut self,
        centers: &PointMatrix,
        fetch: LabelFetch,
    ) -> Result<(u64, ClusterSums, Option<Vec<u32>>), KMeansError> {
        let (reassigned, sums) = self.assign(centers)?;
        let labels = match fetch {
            LabelFetch::Skip => None,
            LabelFetch::IfStable if reassigned != 0 => None,
            LabelFetch::IfStable | LabelFetch::Always => Some(self.fetch_labels()?),
        };
        Ok((reassigned, sums, labels))
    }

    /// Hint that the rows at `indices` will be gathered (possibly
    /// repeatedly, in arbitrary sub-batches) by upcoming
    /// [`RoundBackend::gather_rows_into`] calls. Local backends ignore
    /// it; a distributed backend gathers the unique rows once and serves
    /// the sub-batches from that cache, collapsing mini-batch's per-step
    /// gathers into a single wire cycle.
    fn preload_rows(&mut self, _indices: &[usize]) -> Result<(), KMeansError> {
        Ok(())
    }
}

/// Seeding epilogue shared by every backend-generic initializer: stamps
/// the duration and the seed cost (one [`RoundBackend::potential`] pass)
/// — the backend-generic form of [`crate::pipeline::finish_init`], on
/// the same convention (duration excludes the seed-cost pass).
pub fn finish_init_backend(
    backend: &mut dyn RoundBackend,
    centers: PointMatrix,
    mut stats: InitStats,
    sw: Stopwatch,
) -> Result<InitResult, KMeansError> {
    stats.duration = sw.elapsed();
    stats.seed_cost = backend.potential(&centers)?;
    Ok(InitResult { centers, stats })
}

// ---------------------------------------------------------------------------
// The drivers
// ---------------------------------------------------------------------------

/// Uniform seeding over any backend (RNG tag 20): `k` distinct rows,
/// gathered from their owners. The seed cost is stamped by the caller
/// (usually [`finish_init_backend`]).
pub fn drive_random_init(
    backend: &mut dyn RoundBackend,
    k: usize,
    seed: u64,
) -> Result<(PointMatrix, InitStats), KMeansError> {
    backend.validate(k)?;
    let mut rng = Rng::derive(seed, &[20]);
    let indices = uniform_distinct(backend.len(), k, &mut rng);
    let centers = backend.gather_rows(&indices)?;
    let stats = InitStats {
        rounds: 0,
        passes: 1,
        candidates: k,
        ..InitStats::default()
    };
    Ok((centers, stats))
}

/// Algorithm 2 — **k-means||** — over any backend; the one and only
/// implementation of the paper's round structure.
///
/// Pass structure per round: the driver broadcasts only the *new*
/// candidates ([`RoundBackend::tracker_update`]); the backend folds them
/// into its resident `d²` state (one scan) and serves the Step 4 samples
/// against it — exactly the §3.5 sketch ("each mapper can sample
/// independently", "the reducer can simply add these values"). All
/// O(1)-size decisions (first center, top-up, Step 8 recluster) run here
/// on the sequential tag-30 stream.
pub fn drive_kmeans_parallel(
    backend: &mut dyn RoundBackend,
    k: usize,
    config: &KMeansParallelConfig,
    seed: u64,
) -> Result<(PointMatrix, InitStats), KMeansError> {
    backend.validate(k)?;
    config.validate(k)?;
    let n = backend.len();
    let l = config.oversampling.resolve(k);
    let mut rng = Rng::derive(seed, &[30]);

    // Step 1: one uniform center, fetched from its owner.
    let first = rng.range_usize(n);
    let mut cand_idx: Vec<usize> = vec![first];
    let mut candidates = backend.gather_rows(&cand_idx)?;
    let spec = match config.sampling {
        SamplingMode::Bernoulli => SampleSpec::Bernoulli { l },
        SamplingMode::ExactL => SampleSpec::ExactKeys {
            m: (l.round() as usize).max(1),
        },
    };

    // Step 2: ψ = φ_X(C) — the backend builds its tracker state (this is
    // pass 1 over the data, doubling as the finiteness check on
    // block-backed backends), fused with the round-0 sample. The sample
    // is speculative: it is discarded if ψ ≤ 0 skips the round loop.
    let (psi, mut pending) = backend.tracker_init_sampled(&candidates, 0, seed, Some(spec))?;
    let mut phi = psi;
    let max_rounds = match config.rounds {
        Rounds::Fixed(r) => r,
        Rounds::LogPsi { cap } => {
            if psi <= 1.0 {
                1
            } else {
                (psi.ln().ceil() as usize).clamp(1, cap)
            }
        }
    };

    // Steps 3–6: one fused tracker-update + next-round-sample scan per
    // round; sampling reads only the resident d². The final round fuses
    // the update with Step 7's weights instead (when no top-up can
    // follow), so a full run pays one backend cycle per round.
    let mut rounds_executed = 0usize;
    let mut weights: Option<Vec<f64>> = None;
    for round in 0..max_rounds {
        if phi <= 0.0 {
            break; // every point coincides with a candidate
        }
        rounds_executed += 1;
        let out = match pending.take() {
            Some(out) => out, // speculated by the previous fused round
            None => match spec {
                SampleSpec::Bernoulli { l } => {
                    let (indices, rows) = backend.sample_bernoulli(round, seed, l, phi)?;
                    SampleOut::Picked { indices, rows }
                }
                SampleSpec::ExactKeys { m } => {
                    SampleOut::Keys(backend.sample_exact_keys(round, seed, m)?)
                }
            },
        };
        let (new_indices, rows) = match out {
            SampleOut::Picked { indices, rows } => (indices, rows),
            SampleOut::Keys(keys) => {
                let m = match spec {
                    SampleSpec::ExactKeys { m } => m,
                    SampleSpec::Bernoulli { .. } => unreachable!("keys from a Bernoulli spec"),
                };
                let indices = exact_sample_merge(keys, m);
                let rows = backend.gather_rows(&indices)?;
                (indices, rows)
            }
        };
        if new_indices.is_empty() {
            continue; // a dry Bernoulli round: possible, simply proceed
        }
        let from = candidates.len();
        candidates
            .extend_from(&rows)
            .expect("candidate dim matches");
        cand_idx.extend_from_slice(&new_indices);
        let next = round + 1;
        if next < max_rounds {
            let (p, out) = backend.tracker_update_sampled(from, &rows, next, seed, Some(spec))?;
            phi = p;
            pending = out;
        } else if candidates.len() >= k {
            // Last round and no top-up possible: fuse the update with
            // Step 7. φ is not needed past this point.
            weights = Some(backend.tracker_update_weighted(from, &rows, candidates.len())?);
        } else {
            phi = backend.tracker_update(from, &rows)?;
        }
    }

    // Top-up: the paper notes that with r·ℓ < k "we run the risk of
    // having fewer than k centers" — guarantee k by continuing to draw
    // D²-weighted distinct points (uniform among unchosen once everything
    // is covered). The D² draw needs the full resident d² array; this is
    // the one O(n)-transfer path, taken only when r·ℓ under-sampled.
    if candidates.len() < k {
        let needed = k - candidates.len();
        let mut extra = match config.topup {
            TopUp::D2Continue => {
                let d2 = backend.gather_d2()?;
                kmeans_util::sampling::weighted_distinct(&d2, needed, &mut rng)
            }
            TopUp::Uniform => Vec::new(),
        };
        if extra.len() < needed {
            let mut taken: Vec<usize> = cand_idx.iter().chain(extra.iter()).copied().collect();
            taken.sort_unstable();
            let mut free: Vec<usize> = (0..n).filter(|i| taken.binary_search(i).is_err()).collect();
            let want = (needed - extra.len()).min(free.len());
            // Partial Fisher–Yates: uniform distinct draw from the free set.
            for j in 0..want {
                let pick = j + rng.range_usize(free.len() - j);
                free.swap(j, pick);
                extra.push(free[j]);
            }
        }
        let from = candidates.len();
        let rows = backend.gather_rows(&extra)?;
        candidates
            .extend_from(&rows)
            .expect("candidate dim matches");
        cand_idx.extend_from_slice(&extra);
        // The update keeps the tracker current for Step 7's weights; the
        // potential itself is no longer needed.
        backend.tracker_update(from, &rows)?;
    }

    // Step 7: candidate weights from the tracked nearest ids — an O(|C|)
    // exchange, no data pass. Usually already fetched by the final fused
    // round; the standalone call covers the early-φ-break, dry-last-round,
    // and top-up paths.
    let weights = match weights {
        Some(w) => w,
        None => backend.candidate_weights(candidates.len())?,
    };
    let stats = InitStats {
        rounds: rounds_executed,
        passes: 1 + rounds_executed,
        candidates: candidates.len(),
        seed_cost: 0.0, // stamped by finish_init_backend
        duration: std::time::Duration::ZERO,
    };

    // Step 8: recluster the (resident, small) weighted candidate set.
    let centers = if candidates.len() == k {
        candidates
    } else {
        match config.recluster {
            Recluster::WeightedKMeansPlusPlus => {
                weighted_kmeanspp(&candidates, &weights, k, &mut rng)?
            }
            Recluster::Refined { lloyd_iterations } => {
                let seeded = weighted_kmeanspp(&candidates, &weights, k, &mut rng)?;
                crate::lloyd::weighted_lloyd(&candidates, &weights, seeded, lloyd_iterations)
            }
            Recluster::Uniform => {
                let picks = uniform_distinct(candidates.len(), k, &mut rng);
                candidates.select(&picks)
            }
        }
    };
    Ok((centers, stats))
}

/// Lloyd's iteration (§3.1) over any backend — the one implementation of
/// the assignment/update round loop, including the per-iteration
/// history, deterministic empty-cluster reseeding (the farthest point is
/// fetched back from its owner), and the closing-relabel convention.
pub fn drive_lloyd(
    backend: &mut dyn RoundBackend,
    initial_centers: &PointMatrix,
    config: &LloydConfig,
) -> Result<LloydResult, KMeansError> {
    config.validate()?;
    backend.validate_refine(initial_centers)?;

    let d = backend.dim();
    let mut centers = initial_centers.clone();
    let mut prev_cost = f64::INFINITY;
    let mut history = Vec::new();
    let mut converged = false;
    let mut pruned = 0u64;
    // Whether the loop ended on a stable assignment (no centroid update
    // after the stored labels) — only then do they match the final
    // centers without a closing relabel pass. A tol-based stop applies
    // the centroid update *before* breaking, so it does not qualify.
    let mut stable_exit = false;
    // Labels ride the assignment reply that produced them: a stable pass
    // ships them opportunistically (IfStable), the closing relabel always
    // does — no separate fetch_labels cycle on the common paths.
    let mut final_labels: Option<Vec<u32>> = None;

    for _ in 0..config.max_iterations {
        let (reassigned, sums, labels) = backend.assign_fused(&centers, LabelFetch::IfStable)?;
        pruned += sums.stats.pruned_by_norm_bound;

        // Stability: nothing moved → the centroid update is a no-op.
        if reassigned == 0 {
            converged = true;
            stable_exit = true;
            final_labels = labels;
            history.push(IterationStats {
                cost: sums.cost,
                reassigned: 0,
                reseeded: 0,
            });
            prev_cost = sums.cost;
            break;
        }

        // Centroid update, with deterministic empty-cluster repair.
        let mut reseeded = 0usize;
        let mut farthest: Vec<(usize, f64)> = sums.farthest.clone();
        farthest.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        let mut next_far = farthest.into_iter();
        for c in 0..centers.len() {
            if let Some(centroid) = sums.centroid(c, d) {
                centers.row_mut(c).copy_from_slice(&centroid);
            } else if let Some((idx, _)) = next_far.next() {
                // Empty cluster: land on the farthest available point,
                // fetched back from its owner.
                let row = backend.gather_rows(&[idx])?;
                centers.row_mut(c).copy_from_slice(row.row(0));
                reseeded += 1;
            }
            // More empty clusters than shard maxima (pathological
            // duplicate-heavy data): leave the center in place.
        }

        history.push(IterationStats {
            cost: sums.cost,
            reassigned,
            reseeded,
        });

        // Relative-improvement stop (after at least one update).
        if config.tol > 0.0
            && prev_cost.is_finite()
            && reseeded == 0
            && prev_cost - sums.cost <= config.tol * prev_cost
        {
            converged = true;
            prev_cost = sums.cost;
            break;
        }
        prev_cost = sums.cost;
    }

    // Produce a final self-consistent (labels, cost) for the final
    // centers. On a stable exit the stored labels already describe them;
    // otherwise (iteration cap or tol stop) one closing relabel pass.
    let (cost, closing_pass) = if stable_exit {
        (prev_cost, 0)
    } else {
        let (_, sums, labels) = backend.assign_fused(&centers, LabelFetch::Always)?;
        pruned += sums.stats.pruned_by_norm_bound;
        final_labels = labels;
        (sums.cost, 1)
    };
    let labels = match final_labels {
        Some(l) => l,
        // Safety net (e.g. max_iterations = 0 configs): the labels of the
        // last stored pass.
        None => backend.fetch_labels()?,
    };

    Ok(LloydResult {
        labels,
        cost,
        iterations: history.len(),
        converged,
        assign_passes: history.len() + closing_pass,
        pruned_by_norm_bound: pruned,
        history,
        centers,
    })
}

/// Sculley's mini-batch k-means over any backend — the one
/// implementation of the step loop. Each step draws the same uniform
/// batch indices (RNG tag 40), gathers the rows from their owners, and
/// applies the two-phase gradient step on the driver side; only
/// `O(batch · d)` feature data ever moves per step, which is what makes
/// the distributed realization essentially free.
///
/// The random gather pattern is where backends diverge in *cost*: a
/// budgeted `BlockFileSource` serves repeated blocks from its cache,
/// `CsvSource` re-parses every touched block per batch (convert large
/// CSVs with `skm convert` first), and a cluster ships each batch over
/// the wire.
///
/// Returns the refined centers plus the batch-assignment [`KernelStats`]
/// accumulated across all steps.
pub fn drive_minibatch(
    backend: &mut dyn RoundBackend,
    initial_centers: &PointMatrix,
    config: &MiniBatchConfig,
    seed: u64,
) -> Result<(PointMatrix, KernelStats), KMeansError> {
    backend.validate_refine(initial_centers)?;
    if config.batch_size == 0 || config.iterations == 0 {
        return Err(KMeansError::InvalidConfig(
            "batch_size and iterations must be positive".into(),
        ));
    }

    let n = backend.len();
    let mut centers = initial_centers.clone();
    let mut seen = vec![0u64; centers.len()];
    let mut rng = Rng::derive(seed, &[40]);
    let mut labels = vec![0u32; config.batch_size];
    let mut d2 = vec![0.0f64; config.batch_size];
    // All batch indices are drawn up front (the loop body consumes no
    // other randomness, so the tag-40 stream is identical to drawing
    // per step) and announced to the backend: a distributed backend
    // gathers the unique rows once instead of paying one wire cycle per
    // step.
    let mut batches: Vec<Vec<usize>> = Vec::with_capacity(config.iterations);
    for _ in 0..config.iterations {
        let mut batch = vec![0usize; config.batch_size];
        for slot in &mut batch {
            *slot = rng.range_usize(n);
        }
        batches.push(batch);
    }
    {
        let mut unique: Vec<usize> = batches.iter().flatten().copied().collect();
        unique.sort_unstable();
        unique.dedup();
        backend.preload_rows(&unique)?;
    }
    // One reused gather buffer across all steps — local backends fill it
    // allocation-free in steady state.
    let mut rows = PointMatrix::with_capacity(backend.dim(), config.batch_size);
    let mut stats = KernelStats::default();
    for batch in &batches {
        backend.gather_rows_into(batch, &mut rows)?;
        // Assign against frozen centers, then apply the gradient steps in
        // batch order — Sculley's two-phase step avoids order dependence
        // within a batch. The batch is candidate-set sized, so the kernel
        // pass runs on the driver side for every backend.
        {
            let kernel = AssignKernel::new(&centers);
            stats.absorb(kernel.assign(&rows, 0..rows.len(), &mut labels, &mut d2));
        }
        for (j, &c) in labels.iter().enumerate() {
            let c = c as usize;
            seen[c] += 1;
            let eta = 1.0 / seen[c] as f64;
            let row = rows.row(j);
            let center = centers.row_mut(c);
            for (slot, &x) in center.iter_mut().zip(row) {
                *slot += eta * (x - *slot);
            }
        }
    }
    Ok((centers, stats))
}

/// One labeling pass over any backend: labels and the assignment fold of
/// `centers` without moving them — the driver behind seed-only
/// refinement ([`NoRefine`](crate::pipeline::NoRefine)) and mini-batch's
/// closing relabel.
pub fn drive_label_pass(
    backend: &mut dyn RoundBackend,
    centers: &PointMatrix,
) -> Result<(Vec<u32>, ClusterSums), KMeansError> {
    backend.validate_refine(centers)?;
    let (_, sums, labels) = backend.assign_fused(centers, LabelFetch::Always)?;
    let labels = match labels {
        Some(l) => l,
        None => backend.fetch_labels()?,
    };
    Ok((labels, sums))
}

// ---------------------------------------------------------------------------
// InMemoryBackend
// ---------------------------------------------------------------------------

/// [`RoundBackend`] over a resident [`PointMatrix`]: every primitive is
/// the in-memory kernel it always was ([`CostTracker`],
/// [`assign_and_sum`], [`potential`]), so the drivers reproduce the
/// legacy in-memory entry points bit for bit.
pub struct InMemoryBackend<'a> {
    points: &'a PointMatrix,
    exec: &'a Executor,
    tracker: Option<CostTracker<'a>>,
    candidates: PointMatrix,
    labels: Option<Vec<u32>>,
}

impl<'a> InMemoryBackend<'a> {
    /// Wraps a resident matrix and the executor every pass runs on.
    pub fn new(points: &'a PointMatrix, exec: &'a Executor) -> Self {
        InMemoryBackend {
            points,
            exec,
            tracker: None,
            candidates: PointMatrix::new(points.dim().max(1)),
            labels: None,
        }
    }

    fn tracker(&self) -> Result<&CostTracker<'a>, KMeansError> {
        self.tracker
            .as_ref()
            .ok_or_else(|| KMeansError::InvalidConfig("no tracker initialized".into()))
    }
}

impl RoundBackend for InMemoryBackend<'_> {
    fn kind(&self) -> BackendKind {
        BackendKind::InMemory
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn dim(&self) -> usize {
        self.points.dim()
    }

    fn validate(&self, k: usize) -> Result<(), KMeansError> {
        validate(self.points, k)
    }

    fn validate_refine(&self, centers: &PointMatrix) -> Result<(), KMeansError> {
        validate_refine_inputs(self.points, centers)
    }

    fn gather_rows(&mut self, indices: &[usize]) -> Result<PointMatrix, KMeansError> {
        Ok(self.points.select(indices))
    }

    fn gather_rows_into(
        &mut self,
        indices: &[usize],
        out: &mut PointMatrix,
    ) -> Result<(), KMeansError> {
        out.clear();
        for &i in indices {
            out.push(self.points.row(i))
                .map_err(|e| KMeansError::Data(e.to_string()))?;
        }
        Ok(())
    }

    fn tracker_init(&mut self, centers: &PointMatrix) -> Result<f64, KMeansError> {
        self.candidates = centers.clone();
        let tracker = CostTracker::new(self.points, &self.candidates, self.exec);
        let psi = tracker.potential();
        self.tracker = Some(tracker);
        Ok(psi)
    }

    fn tracker_update(&mut self, from: usize, new_rows: &PointMatrix) -> Result<f64, KMeansError> {
        debug_assert_eq!(from, self.candidates.len(), "tracker update out of order");
        self.candidates
            .extend_from(new_rows)
            .map_err(|e| KMeansError::Data(e.to_string()))?;
        let tracker = self
            .tracker
            .as_mut()
            .ok_or_else(|| KMeansError::InvalidConfig("no tracker initialized".into()))?;
        tracker.update(&self.candidates, from, self.exec);
        Ok(tracker.potential())
    }

    fn sample_bernoulli(
        &mut self,
        round: usize,
        seed: u64,
        l: f64,
        phi: f64,
    ) -> Result<(Vec<usize>, PointMatrix), KMeansError> {
        let picked = sample_bernoulli(self.tracker()?.d2(), l, phi, seed, round, self.exec, 0);
        let rows = self.points.select(&picked);
        Ok((picked, rows))
    }

    fn sample_exact_keys(
        &mut self,
        round: usize,
        seed: u64,
        m: usize,
    ) -> Result<Vec<(f64, usize)>, KMeansError> {
        Ok(exact_sample_keys(
            self.tracker()?.d2(),
            m,
            seed,
            round,
            self.exec,
            0,
        ))
    }

    fn gather_d2(&mut self) -> Result<Vec<f64>, KMeansError> {
        Ok(self.tracker()?.d2().to_vec())
    }

    fn candidate_weights(&mut self, m: usize) -> Result<Vec<f64>, KMeansError> {
        Ok(self.tracker()?.weights(m))
    }

    fn assign(&mut self, centers: &PointMatrix) -> Result<(u64, ClusterSums), KMeansError> {
        let (labels, sums) = assign_and_sum(self.points, centers, self.exec);
        let reassigned = match &self.labels {
            None => self.points.len() as u64,
            Some(prev) => prev.iter().zip(&labels).filter(|(a, b)| a != b).count() as u64,
        };
        self.labels = Some(labels);
        Ok((reassigned, sums))
    }

    fn fetch_labels(&mut self) -> Result<Vec<u32>, KMeansError> {
        self.labels
            .clone()
            .ok_or_else(|| KMeansError::InvalidConfig("no assignment pass has run".into()))
    }

    fn potential(&mut self, centers: &PointMatrix) -> Result<f64, KMeansError> {
        Ok(potential(self.points, centers, self.exec))
    }
}

// ---------------------------------------------------------------------------
// ChunkedBackend
// ---------------------------------------------------------------------------

/// [`RoundBackend`] over a block-resident [`ChunkedSource`]: every
/// primitive is the out-of-core kernel from [`crate::chunked`]
/// ([`ChunkedCostTracker`], [`assign_partials_chunked`] + the
/// shard-ordered fold, [`gather_rows`]), so the drivers stay
/// bit-identical to the in-memory path for **any** block size.
pub struct ChunkedBackend<'a> {
    source: &'a dyn ChunkedSource,
    exec: &'a Executor,
    tracker: Option<ChunkedCostTracker>,
    candidates: PointMatrix,
    buf: PointMatrix,
    labels: Option<Vec<u32>>,
}

impl<'a> ChunkedBackend<'a> {
    /// Wraps a chunked source and the executor every pass runs on.
    pub fn new(source: &'a dyn ChunkedSource, exec: &'a Executor) -> Self {
        ChunkedBackend {
            source,
            exec,
            tracker: None,
            candidates: PointMatrix::new(source.dim().max(1)),
            buf: source.block_buffer(),
            labels: None,
        }
    }

    fn tracker(&self) -> Result<&ChunkedCostTracker, KMeansError> {
        self.tracker
            .as_ref()
            .ok_or_else(|| KMeansError::InvalidConfig("no tracker initialized".into()))
    }
}

impl RoundBackend for ChunkedBackend<'_> {
    fn kind(&self) -> BackendKind {
        BackendKind::Chunked
    }

    fn len(&self) -> usize {
        self.source.len()
    }

    fn dim(&self) -> usize {
        self.source.dim()
    }

    fn local_source(&self) -> Option<(&dyn ChunkedSource, &Executor)> {
        Some((self.source, self.exec))
    }

    fn validate(&self, k: usize) -> Result<(), KMeansError> {
        validate_source(self.source, k)
    }

    fn validate_refine(&self, centers: &PointMatrix) -> Result<(), KMeansError> {
        validate_refine_inputs_chunked(self.source, centers)
    }

    fn gather_rows(&mut self, indices: &[usize]) -> Result<PointMatrix, KMeansError> {
        gather_rows(self.source, indices, &mut self.buf)
    }

    fn gather_rows_into(
        &mut self,
        indices: &[usize],
        out: &mut PointMatrix,
    ) -> Result<(), KMeansError> {
        crate::chunked::gather_rows_into(self.source, indices, &mut self.buf, out)
    }

    fn tracker_init(&mut self, centers: &PointMatrix) -> Result<f64, KMeansError> {
        self.candidates = centers.clone();
        let tracker = ChunkedCostTracker::new(self.source, &self.candidates, self.exec)?;
        let psi = tracker.potential();
        self.tracker = Some(tracker);
        Ok(psi)
    }

    fn tracker_update(&mut self, from: usize, new_rows: &PointMatrix) -> Result<f64, KMeansError> {
        debug_assert_eq!(from, self.candidates.len(), "tracker update out of order");
        self.candidates
            .extend_from(new_rows)
            .map_err(|e| KMeansError::Data(e.to_string()))?;
        let tracker = self
            .tracker
            .as_mut()
            .ok_or_else(|| KMeansError::InvalidConfig("no tracker initialized".into()))?;
        tracker.update(self.source, &self.candidates, from, self.exec)?;
        Ok(tracker.potential())
    }

    fn sample_bernoulli(
        &mut self,
        round: usize,
        seed: u64,
        l: f64,
        phi: f64,
    ) -> Result<(Vec<usize>, PointMatrix), KMeansError> {
        let picked = sample_bernoulli(self.tracker()?.d2(), l, phi, seed, round, self.exec, 0);
        let rows = gather_rows(self.source, &picked, &mut self.buf)?;
        Ok((picked, rows))
    }

    fn sample_exact_keys(
        &mut self,
        round: usize,
        seed: u64,
        m: usize,
    ) -> Result<Vec<(f64, usize)>, KMeansError> {
        Ok(exact_sample_keys(
            self.tracker()?.d2(),
            m,
            seed,
            round,
            self.exec,
            0,
        ))
    }

    fn gather_d2(&mut self) -> Result<Vec<f64>, KMeansError> {
        Ok(self.tracker()?.d2().to_vec())
    }

    fn candidate_weights(&mut self, m: usize) -> Result<Vec<f64>, KMeansError> {
        Ok(self.tracker()?.weights(m))
    }

    fn assign(&mut self, centers: &PointMatrix) -> Result<(u64, ClusterSums), KMeansError> {
        let (labels, partials, stats) =
            assign_partials_chunked(self.source, centers, self.exec, 0, self.source.len())?;
        let reassigned = match &self.labels {
            None => self.source.len() as u64,
            Some(prev) => prev.iter().zip(&labels).filter(|(a, b)| a != b).count() as u64,
        };
        self.labels = Some(labels);
        let mut sums = fold_accum_shards(centers.len(), self.source.dim(), &partials);
        sums.stats = stats;
        Ok((reassigned, sums))
    }

    fn fetch_labels(&mut self) -> Result<Vec<u32>, KMeansError> {
        self.labels
            .clone()
            .ok_or_else(|| KMeansError::InvalidConfig("no assignment pass has run".into()))
    }

    fn potential(&mut self, centers: &PointMatrix) -> Result<f64, KMeansError> {
        crate::chunked::potential_chunked(self.source, centers, self.exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::kmeans_parallel;
    use crate::lloyd::lloyd;
    use crate::minibatch::minibatch_kmeans;
    use kmeans_data::InMemorySource;
    use kmeans_par::Parallelism;

    fn blobs(n: usize) -> PointMatrix {
        let mut m = PointMatrix::new(2);
        let mut rng = Rng::new(7);
        for i in 0..n {
            let c = (i % 3) as f64 * 40.0;
            m.push(&[c + rng.normal(), c * 0.5 + rng.normal()]).unwrap();
        }
        m
    }

    fn source(m: &PointMatrix, block_rows: usize) -> InMemorySource {
        InMemorySource::new(m.clone(), block_rows).unwrap()
    }

    /// The wrappers route through the driver, so comparing the chunked
    /// backend against the public in-memory entry points is the full
    /// in-memory ≡ chunked equivalence.
    #[test]
    fn kmeans_parallel_is_bit_identical_across_backends() {
        let m = blobs(500);
        let config = KMeansParallelConfig::default();
        for threads in [Parallelism::Sequential, Parallelism::Threads(3)] {
            let exec = Executor::new(threads).with_shard_size(64);
            let (ref_centers, ref_stats) = kmeans_parallel(&m, 5, &config, 42, &exec).unwrap();
            for block_rows in [1, 13, 64, 500, 1000] {
                let src = source(&m, block_rows);
                let mut backend = ChunkedBackend::new(&src, &exec);
                let (centers, stats) = drive_kmeans_parallel(&mut backend, 5, &config, 42).unwrap();
                assert_eq!(centers, ref_centers, "block_rows {block_rows}");
                assert_eq!(stats.candidates, ref_stats.candidates);
                assert_eq!(stats.rounds, ref_stats.rounds);
            }
        }
    }

    #[test]
    fn exact_l_and_topup_are_bit_identical_across_backends() {
        let m = blobs(400);
        let exec = Executor::sequential().with_shard_size(32);
        for config in [
            KMeansParallelConfig::default().sampling(SamplingMode::ExactL),
            // ℓ = 0.1k, one round: forces the D² top-up path.
            KMeansParallelConfig::default()
                .oversampling_factor(0.1)
                .rounds(1),
        ] {
            let (ref_centers, _) = kmeans_parallel(&m, 20, &config, 9, &exec).unwrap();
            let src = source(&m, 37);
            let mut backend = ChunkedBackend::new(&src, &exec);
            let (centers, _) = drive_kmeans_parallel(&mut backend, 20, &config, 9).unwrap();
            assert_eq!(centers, ref_centers, "{config:?}");
        }
    }

    #[test]
    fn lloyd_is_bit_identical_across_backends_including_reseeds() {
        let m = blobs(400);
        // Two centers glued far away: forces empty-cluster reseeding.
        let init =
            PointMatrix::from_flat(vec![0.0, 0.0, -900.0, -900.0, -900.0, -900.0], 2).unwrap();
        let exec = Executor::new(Parallelism::Threads(3)).with_shard_size(32);
        let reference = lloyd(&m, &init, &LloydConfig::default(), &exec).unwrap();
        assert!(reference.history[0].reseeded >= 1, "setup must reseed");
        for block_rows in [11, 128, 400] {
            let src = source(&m, block_rows);
            let mut backend = ChunkedBackend::new(&src, &exec);
            let got = drive_lloyd(&mut backend, &init, &LloydConfig::default()).unwrap();
            assert_eq!(got.centers, reference.centers, "block_rows {block_rows}");
            assert_eq!(got.labels, reference.labels);
            assert_eq!(got.cost.to_bits(), reference.cost.to_bits());
            assert_eq!(got.iterations, reference.iterations);
            assert_eq!(got.assign_passes, reference.assign_passes);
            assert_eq!(got.pruned_by_norm_bound, reference.pruned_by_norm_bound);
        }
    }

    #[test]
    fn minibatch_is_bit_identical_across_backends() {
        let m = blobs(600);
        let init = PointMatrix::from_flat(vec![10.0, 0.0, 50.0, 20.0, 70.0, 40.0], 2).unwrap();
        let config = MiniBatchConfig {
            batch_size: 64,
            iterations: 30,
        };
        let reference = minibatch_kmeans(&m, &init, &config, 9).unwrap();
        let exec = Executor::sequential();
        for block_rows in [23, 100, 600] {
            let src = source(&m, block_rows);
            let mut backend = ChunkedBackend::new(&src, &exec);
            let (got, _) = drive_minibatch(&mut backend, &init, &config, 9).unwrap();
            assert_eq!(got, reference, "block_rows {block_rows}");
        }
    }

    #[test]
    fn random_is_bit_identical_across_backends() {
        let m = blobs(200);
        let exec = Executor::sequential();
        let mut mem = InMemoryBackend::new(&m, &exec);
        let (ref_centers, _) = drive_random_init(&mut mem, 7, 3).unwrap();
        let src = source(&m, 17);
        let mut chunked = ChunkedBackend::new(&src, &exec);
        let (centers, _) = drive_random_init(&mut chunked, 7, 3).unwrap();
        assert_eq!(centers, ref_centers);
    }

    #[test]
    fn drivers_validate_inputs_per_backend_contract() {
        let m = blobs(10);
        let exec = Executor::sequential();
        let mut mem = InMemoryBackend::new(&m, &exec);
        assert!(matches!(
            drive_random_init(&mut mem, 0, 0),
            Err(KMeansError::InvalidK { .. })
        ));
        assert!(matches!(
            drive_random_init(&mut mem, 11, 0),
            Err(KMeansError::InvalidK { .. })
        ));
        let wrong = PointMatrix::from_flat(vec![0.0], 1).unwrap();
        assert!(matches!(
            drive_lloyd(&mut mem, &wrong, &LloydConfig::default()),
            Err(KMeansError::DimensionMismatch { .. })
        ));
        assert!(drive_minibatch(&mut mem, &wrong, &MiniBatchConfig::default(), 0).is_err());
        let src = source(&m, 4);
        let mut chunked = ChunkedBackend::new(&src, &exec);
        assert!(matches!(
            drive_lloyd(&mut chunked, &wrong, &LloydConfig::default()),
            Err(KMeansError::DimensionMismatch { .. })
        ));
        // Sampling primitives before tracker_init are a typed error.
        assert!(chunked.sample_bernoulli(0, 0, 1.0, 1.0).is_err());
        assert!(chunked.gather_d2().is_err());
        assert!(mem.fetch_labels().is_err());
    }

    #[test]
    fn label_pass_matches_assign_and_sum() {
        let m = blobs(300);
        let centers = PointMatrix::from_flat(vec![0.0, 0.0, 40.0, 20.0, 80.0, 40.0], 2).unwrap();
        let exec = Executor::new(Parallelism::Threads(2)).with_shard_size(16);
        let (ref_labels, ref_sums) = assign_and_sum(&m, &centers, &exec);
        let src = source(&m, 29);
        let mut backend = ChunkedBackend::new(&src, &exec);
        let (labels, sums) = drive_label_pass(&mut backend, &centers).unwrap();
        assert_eq!(labels, ref_labels);
        assert_eq!(sums.cost.to_bits(), ref_sums.cost.to_bits());
        assert_eq!(sums.stats, ref_sums.stats);
    }
}
