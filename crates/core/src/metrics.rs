//! External clustering-quality metrics (evaluation only).
//!
//! The paper evaluates exclusively by the k-means potential; these metrics
//! supplement it when ground-truth component labels exist (all synthetic
//! generators in `kmeans-data` provide them): purity and normalized mutual
//! information. They never feed back into any algorithm.

use std::collections::HashMap;

/// Builds the contingency table between two labelings.
fn contingency(pred: &[u32], truth: &[u32]) -> HashMap<(u32, u32), u64> {
    let mut table = HashMap::new();
    for (&p, &t) in pred.iter().zip(truth) {
        *table.entry((p, t)).or_insert(0u64) += 1;
    }
    table
}

fn class_counts(labels: &[u32]) -> HashMap<u32, u64> {
    let mut counts = HashMap::new();
    for &l in labels {
        *counts.entry(l).or_insert(0u64) += 1;
    }
    counts
}

fn entropy(counts: &HashMap<u32, u64>, n: f64) -> f64 {
    counts
        .values()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Cluster purity: the fraction of points belonging to the majority true
/// class of their assigned cluster. In `[0, 1]`; higher is better.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn purity(pred: &[u32], truth: &[u32]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "purity: length mismatch");
    assert!(!pred.is_empty(), "purity: empty labelings");
    let mut majority: HashMap<u32, HashMap<u32, u64>> = HashMap::new();
    for (&p, &t) in pred.iter().zip(truth) {
        *majority.entry(p).or_default().entry(t).or_insert(0) += 1;
    }
    let correct: u64 = majority
        .values()
        .map(|dist| *dist.values().max().expect("non-empty cluster"))
        .sum();
    correct as f64 / pred.len() as f64
}

/// Normalized mutual information between two labelings, with arithmetic-
/// mean normalization: `NMI = 2·I(P;T) / (H(P) + H(T))`. In `[0, 1]`.
///
/// Degenerate cases: if both labelings are constant, they agree perfectly
/// (1.0); if exactly one is constant, there is no shared information (0.0).
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn nmi(pred: &[u32], truth: &[u32]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "nmi: length mismatch");
    assert!(!pred.is_empty(), "nmi: empty labelings");
    let n = pred.len() as f64;
    let pc = class_counts(pred);
    let tc = class_counts(truth);
    let hp = entropy(&pc, n);
    let ht = entropy(&tc, n);
    if hp == 0.0 && ht == 0.0 {
        return 1.0;
    }
    if hp == 0.0 || ht == 0.0 {
        return 0.0;
    }
    let mut mi = 0.0;
    for ((p, t), &joint) in &contingency(pred, truth) {
        let pj = joint as f64 / n;
        let pp = pc[p] as f64 / n;
        let pt = tc[t] as f64 / n;
        mi += pj * (pj / (pp * pt)).ln();
    }
    (2.0 * mi / (hp + ht)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purity_perfect_and_mixed() {
        assert_eq!(purity(&[0, 0, 1, 1], &[5, 5, 9, 9]), 1.0);
        // One point of cluster 0 belongs to the other class.
        assert_eq!(purity(&[0, 0, 0, 1], &[5, 5, 9, 9]), 0.75);
        // Single cluster over two equal classes: purity 0.5.
        assert_eq!(purity(&[0, 0, 0, 0], &[1, 1, 2, 2]), 0.5);
    }

    #[test]
    fn nmi_perfect_match_is_one() {
        assert!((nmi(&[0, 0, 1, 1], &[7, 7, 3, 3]) - 1.0).abs() < 1e-12);
        // Label permutation does not matter.
        assert!((nmi(&[1, 1, 0, 0], &[7, 7, 3, 3]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_independent_labelings_near_zero() {
        // Prediction splits orthogonally to the truth.
        let pred = [0, 1, 0, 1];
        let truth = [0, 0, 1, 1];
        assert!(nmi(&pred, &truth).abs() < 1e-12);
    }

    #[test]
    fn nmi_degenerate_cases() {
        assert_eq!(nmi(&[0, 0, 0], &[1, 1, 1]), 1.0);
        assert_eq!(nmi(&[0, 0, 0], &[1, 2, 3]), 0.0);
        assert_eq!(nmi(&[1, 2, 3], &[0, 0, 0]), 0.0);
    }

    #[test]
    fn nmi_partial_agreement_is_intermediate() {
        let pred = [0, 0, 0, 1, 1, 1];
        let truth = [0, 0, 1, 1, 1, 0];
        let v = nmi(&pred, &truth);
        assert!(v > 0.0 && v < 1.0, "nmi {v}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        nmi(&[0], &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        purity(&[], &[]);
    }
}

/// Adjusted Rand index between two labelings, in `[-1, 1]` (1 = identical
/// partitions, ~0 = chance agreement).
///
/// Uses the permutation-model expectation of the Rand index
/// (Hubert & Arabie, 1985).
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn adjusted_rand_index(pred: &[u32], truth: &[u32]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "ari: length mismatch");
    assert!(!pred.is_empty(), "ari: empty labelings");
    let choose2 = |x: u64| -> f64 { (x as f64) * (x as f64 - 1.0) / 2.0 };
    let joint = contingency(pred, truth);
    let pc = class_counts(pred);
    let tc = class_counts(truth);
    let sum_joint: f64 = joint.values().map(|&c| choose2(c)).sum();
    let sum_pred: f64 = pc.values().map(|&c| choose2(c)).sum();
    let sum_truth: f64 = tc.values().map(|&c| choose2(c)).sum();
    let total = choose2(pred.len() as u64);
    let expected = sum_pred * sum_truth / total;
    let max_index = 0.5 * (sum_pred + sum_truth);
    if (max_index - expected).abs() < 1e-12 {
        // Degenerate: both partitions trivial (all-singletons or all-one).
        return if sum_joint == max_index { 1.0 } else { 0.0 };
    }
    (sum_joint - expected) / (max_index - expected)
}

/// Mean silhouette coefficient over a uniform sample of points, in
/// `[-1, 1]` (higher = tighter, better-separated clusters).
///
/// Exact silhouette is O(n²·d); this evaluates at most `sample` points
/// against *all* points (O(sample·n·d)), which is the standard estimator
/// for large datasets. Points in singleton clusters score 0 by convention.
///
/// Returns `None` when fewer than 2 clusters are present.
///
/// # Panics
///
/// Panics if lengths mismatch or `sample == 0`.
pub fn silhouette_sampled(
    points: &kmeans_data::PointMatrix,
    labels: &[u32],
    sample: usize,
    seed: u64,
) -> Option<f64> {
    assert_eq!(points.len(), labels.len(), "silhouette: length mismatch");
    assert!(sample > 0, "silhouette: empty sample");
    let k = match labels.iter().max() {
        Some(&m) => m as usize + 1,
        None => return None,
    };
    let mut cluster_sizes = vec![0u64; k];
    for &l in labels {
        cluster_sizes[l as usize] += 1;
    }
    if cluster_sizes.iter().filter(|&&c| c > 0).count() < 2 {
        return None;
    }
    let n = points.len();
    let m = sample.min(n);
    let mut rng = kmeans_util::Rng::derive(seed, &[80]);
    let chosen = kmeans_util::sampling::uniform_distinct(n, m, &mut rng);
    let mut acc = 0.0;
    let mut counted = 0usize;
    let mut dist_sums = vec![0.0f64; k];
    for &i in &chosen {
        let own = labels[i] as usize;
        if cluster_sizes[own] <= 1 {
            counted += 1; // silhouette 0 by convention
            continue;
        }
        dist_sums.iter_mut().for_each(|s| *s = 0.0);
        let row = points.row(i);
        for (j, other) in points.rows().enumerate() {
            dist_sums[labels[j] as usize] += crate::distance::sq_dist(row, other).sqrt();
        }
        // Mean intra-cluster distance excludes the point itself.
        let a = dist_sums[own] / (cluster_sizes[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && cluster_sizes[c] > 0)
            .map(|c| dist_sums[c] / cluster_sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        acc += (b - a) / a.max(b);
        counted += 1;
    }
    Some(acc / counted as f64)
}

#[cfg(test)]
mod extended_tests {
    use super::*;
    use kmeans_data::PointMatrix;

    #[test]
    fn ari_perfect_and_permuted() {
        assert!((adjusted_rand_index(&[0, 0, 1, 1], &[3, 3, 9, 9]) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&[1, 1, 0, 0], &[3, 3, 9, 9]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_independent_is_near_zero() {
        // Orthogonal split: ARI corrects for chance (plain Rand would not).
        let pred = [0, 1, 0, 1, 0, 1, 0, 1];
        let truth = [0, 0, 0, 0, 1, 1, 1, 1];
        assert!(adjusted_rand_index(&pred, &truth).abs() < 0.2);
    }

    #[test]
    fn ari_worse_than_chance_is_negative() {
        // Maximally crossed small partitions can dip below zero.
        let pred = [0, 1, 0, 1];
        let truth = [0, 0, 1, 1];
        assert!(adjusted_rand_index(&pred, &truth) <= 0.0);
    }

    #[test]
    fn ari_degenerate_single_cluster_both() {
        assert_eq!(adjusted_rand_index(&[0, 0, 0], &[5, 5, 5]), 1.0);
    }

    #[test]
    fn silhouette_separated_vs_merged() {
        // Two tight, far-apart blobs.
        let mut m = PointMatrix::new(1);
        let mut labels = Vec::new();
        for i in 0..20 {
            m.push(&[i as f64 * 0.01]).unwrap();
            labels.push(0u32);
        }
        for i in 0..20 {
            m.push(&[100.0 + i as f64 * 0.01]).unwrap();
            labels.push(1u32);
        }
        let good = silhouette_sampled(&m, &labels, 40, 1).unwrap();
        assert!(good > 0.95, "separated blobs scored {good}");
        // Random labels on the same data score much lower.
        let mut rng = kmeans_util::Rng::new(2);
        let random: Vec<u32> = (0..40).map(|_| rng.range_usize(2) as u32).collect();
        let bad = silhouette_sampled(&m, &random, 40, 1).unwrap();
        assert!(bad < good - 0.5, "random labels scored {bad} vs {good}");
    }

    #[test]
    fn silhouette_single_cluster_is_none() {
        let m = PointMatrix::from_flat(vec![0.0, 1.0, 2.0], 1).unwrap();
        assert!(silhouette_sampled(&m, &[0, 0, 0], 3, 0).is_none());
    }

    #[test]
    fn silhouette_sampling_is_deterministic() {
        let mut m = PointMatrix::new(1);
        let mut labels = Vec::new();
        for i in 0..100 {
            m.push(&[(i % 10) as f64 * 10.0]).unwrap();
            labels.push((i % 10 >= 5) as u32);
        }
        let a = silhouette_sampled(&m, &labels, 20, 7);
        let b = silhouette_sampled(&m, &labels, 20, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn silhouette_handles_singleton_clusters() {
        let m = PointMatrix::from_flat(vec![0.0, 0.1, 50.0], 1).unwrap();
        let s = silhouette_sampled(&m, &[0, 0, 1], 3, 0).unwrap();
        assert!(s.is_finite());
    }
}
