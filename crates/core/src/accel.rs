//! Hamerly's bounds-accelerated Lloyd iteration (Hamerly, SDM 2010) —
//! an *exact* drop-in for [`lloyd`](crate::lloyd::lloyd) that skips most
//! distance computations.
//!
//! This is an extension beyond the paper (its §7 asks which k-means
//! "modifications can also be efficiently parallelized"): per point it
//! keeps one **upper bound** `ub ≥ d(x, c_a)` on the distance to its
//! assigned center and one **lower bound** `lb ≤ min_{j≠a} d(x, c_j)` on
//! the distance to every other center. If
//! `ub ≤ max(lb, ½·min_{j≠a} d(c_a, c_j))`, the assignment provably cannot
//! change and the point is skipped without touching its coordinates. After
//! each centroid update the bounds are repaired with the center movement:
//! `ub += δ(a)`, `lb −= max_j δ(j)`.
//!
//! The algorithm computes the same assignments as plain Lloyd (it only
//! skips provably redundant work), so the result is identical up to
//! floating-point tie-breaking; `tests` verify label equality against
//! [`lloyd`](crate::lloyd::lloyd). The return value reports how many
//! distance evaluations were actually spent — the criterion bench
//! `lloyd.rs` and the integration tests use it to verify real pruning.

use crate::assign::MAX_SUM_SHARDS;
use crate::distance::sq_dist;
use crate::error::KMeansError;
use crate::lloyd::LloydConfig;
use kmeans_data::PointMatrix;
use kmeans_par::Executor;

/// Per-point state carried across iterations.
#[derive(Clone, Copy, Debug)]
struct PointState {
    /// Current assignment.
    label: u32,
    /// Upper bound on the distance (not squared) to the assigned center.
    ub: f64,
    /// Lower bound on the distance to the second-closest center.
    lb: f64,
}

/// Outcome of a Hamerly-accelerated Lloyd run.
#[derive(Clone, Debug)]
pub struct HamerlyResult {
    /// Final centers.
    pub centers: PointMatrix,
    /// Final assignment (consistent with `centers`).
    pub labels: Vec<u32>,
    /// Final potential, computed exactly with one closing pass.
    pub cost: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether assignment stability was reached before the cap.
    pub converged: bool,
    /// Total point-to-center distance evaluations spent. Plain Lloyd
    /// spends `n·k` per iteration; the ratio of the two is the pruning
    /// factor.
    pub distance_computations: u64,
}

/// Per-shard accumulation for one iteration.
struct Partial {
    sums: Vec<f64>,
    counts: Vec<u64>,
    reassigned: u64,
    dist_comps: u64,
    /// Farthest point by upper bound (reseed candidate).
    farthest: (usize, f64),
}

/// Runs Hamerly-accelerated Lloyd from the given initial centers.
///
/// Accepts the same configuration as [`lloyd`](crate::lloyd::lloyd),
/// except `tol` must be 0: the exact potential is not available
/// per-iteration without forfeiting the speedup, so this algorithm stops
/// on assignment stability only and rejects a tolerance rather than
/// silently ignoring it (a lloyd-vs-hamerly comparison at equal `tol`
/// would otherwise compare different stopping rules).
pub fn hamerly_lloyd(
    points: &PointMatrix,
    initial_centers: &PointMatrix,
    config: &LloydConfig,
    exec: &Executor,
) -> Result<HamerlyResult, KMeansError> {
    crate::lloyd::validate_refine_inputs(points, initial_centers)?;
    config.validate()?;
    if config.tol != 0.0 {
        return Err(KMeansError::InvalidConfig(
            "hamerly_lloyd stops on assignment stability only; tol is not supported \
             (use lloyd for tolerance-based stopping)"
                .into(),
        ));
    }

    let n = points.len();
    let d = points.dim();
    let k = initial_centers.len();
    let mut centers = initial_centers.clone();
    // Bound per-shard partial memory the same way assign_and_sum does.
    let exec = {
        let base = exec.shard_spec().shard_size();
        let bounded = n.div_ceil(MAX_SUM_SHARDS).max(base).max(1);
        exec.clone().with_shard_size(bounded)
    };

    let mut state = vec![
        PointState {
            label: 0,
            ub: f64::INFINITY,
            lb: 0.0,
        };
        n
    ];
    let mut total_dist_comps = 0u64;
    let mut iterations = 0usize;
    let mut converged = false;
    let mut first_iteration = true;

    while iterations < config.max_iterations {
        iterations += 1;
        // Half-distance from each center to its closest other center:
        // a point with ub ≤ s(a) cannot be closer to any other center.
        let s: Vec<f64> = (0..k)
            .map(|j| {
                let mut best = f64::INFINITY;
                for j2 in 0..k {
                    if j2 != j {
                        best = best.min(sq_dist(centers.row(j), centers.row(j2)));
                    }
                }
                0.5 * best.sqrt()
            })
            .collect();
        total_dist_comps += (k * k.saturating_sub(1)) as u64;

        let init_pass = first_iteration;
        first_iteration = false;
        let centers_ref = &centers;
        let s_ref = &s;
        let partials: Vec<Partial> = exec.update_map_shards(&mut state, |_, start, chunk| {
            let mut partial = Partial {
                sums: vec![0.0; k * d],
                counts: vec![0; k],
                reassigned: 0,
                dist_comps: 0,
                farthest: (usize::MAX, f64::NEG_INFINITY),
            };
            for (off, st) in chunk.iter_mut().enumerate() {
                let idx = start + off;
                let row = points.row(idx);
                if init_pass {
                    let (label, d1, d2) = two_nearest(row, centers_ref);
                    partial.dist_comps += k as u64;
                    partial.reassigned += 1;
                    *st = PointState {
                        label: label as u32,
                        ub: d1,
                        lb: d2,
                    };
                } else {
                    let a = st.label as usize;
                    let threshold = s_ref[a].max(st.lb);
                    if st.ub > threshold {
                        // Tighten the upper bound with one exact distance.
                        st.ub = sq_dist(row, centers_ref.row(a)).sqrt();
                        partial.dist_comps += 1;
                        if st.ub > threshold {
                            // Bounds can no longer certify: full scan.
                            let (label, d1, d2) = two_nearest(row, centers_ref);
                            partial.dist_comps += k as u64;
                            if label as u32 != st.label {
                                partial.reassigned += 1;
                            }
                            *st = PointState {
                                label: label as u32,
                                ub: d1,
                                lb: d2,
                            };
                        }
                    }
                }
                let label = st.label as usize;
                partial.counts[label] += 1;
                let dst = &mut partial.sums[label * d..(label + 1) * d];
                for (acc, &v) in dst.iter_mut().zip(row) {
                    *acc += v;
                }
                if st.ub > partial.farthest.1 {
                    partial.farthest = (idx, st.ub);
                }
            }
            partial
        });

        // Deterministic shard-order fold.
        let mut sums = vec![0.0f64; k * d];
        let mut counts = vec![0u64; k];
        let mut reassigned = 0u64;
        let mut farthest: Vec<(usize, f64)> = Vec::new();
        for p in partials {
            for (acc, v) in sums.iter_mut().zip(p.sums) {
                *acc += v;
            }
            for (acc, v) in counts.iter_mut().zip(p.counts) {
                *acc += v;
            }
            reassigned += p.reassigned;
            total_dist_comps += p.dist_comps;
            if p.farthest.0 != usize::MAX {
                farthest.push(p.farthest);
            }
        }

        if reassigned == 0 {
            converged = true;
            break;
        }

        // Centroid update with the same deterministic empty-cluster repair
        // as plain Lloyd (farthest available point; here farthest by ub).
        farthest.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        let mut next_far = farthest.into_iter();
        let mut delta = vec![0.0f64; k];
        let mut max_delta = 0.0f64;
        for c in 0..k {
            let new_center: Vec<f64> = if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f64;
                sums[c * d..(c + 1) * d].iter().map(|&x| x * inv).collect()
            } else {
                match next_far.next() {
                    Some((idx, _)) => points.row(idx).to_vec(),
                    None => centers.row(c).to_vec(),
                }
            };
            delta[c] = sq_dist(centers.row(c), &new_center).sqrt();
            max_delta = max_delta.max(delta[c]);
            centers.row_mut(c).copy_from_slice(&new_center);
        }
        total_dist_comps += k as u64;

        // Bound repair: the triangle inequality keeps both bounds valid
        // after every center moved by at most its δ.
        exec.update_shards(&mut state, |_, _, chunk| {
            for st in chunk {
                st.ub += delta[st.label as usize];
                st.lb = (st.lb - max_delta).max(0.0);
            }
        });
    }

    // One exact closing pass for the final (labels, cost): bounds certify
    // assignments, but the reported potential must be exact.
    let (labels, sums) = crate::assign::assign_and_sum(points, &centers, &exec);
    Ok(HamerlyResult {
        centers,
        labels,
        cost: sums.cost,
        iterations,
        converged,
        distance_computations: total_dist_comps,
    })
}

/// Nearest and second-nearest center distances (not squared).
///
/// Returns `(argmin, d_min, d_second)`; with a single center the second
/// distance is `+∞`. Ties break toward the lower index, matching
/// [`nearest`](crate::distance::nearest).
fn two_nearest(row: &[f64], centers: &PointMatrix) -> (usize, f64, f64) {
    let mut best = 0usize;
    let mut d1 = f64::INFINITY;
    let mut d2 = f64::INFINITY;
    for (j, c) in centers.rows().enumerate() {
        let dist = sq_dist(row, c);
        if dist < d1 {
            d2 = d1;
            d1 = dist;
            best = j;
        } else if dist < d2 {
            d2 = dist;
        }
    }
    (best, d1.sqrt(), d2.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::InitMethod;
    use crate::lloyd::lloyd;
    use kmeans_data::synth::GaussMixture;
    use kmeans_par::Parallelism;

    fn mixture(k: usize, n: usize, seed: u64) -> PointMatrix {
        GaussMixture::new(k)
            .points(n)
            .center_variance(40.0)
            .generate(seed)
            .unwrap()
            .dataset
            .into_parts()
            .1
    }

    #[test]
    fn matches_plain_lloyd_labels_and_cost() {
        for seed in 0..4 {
            let points = mixture(8, 1_200, seed);
            let exec = Executor::sequential();
            let init = InitMethod::KMeansPlusPlus
                .run(&points, 8, seed, &exec)
                .unwrap();
            let config = LloydConfig::default();
            let plain = lloyd(&points, &init.centers, &config, &exec).unwrap();
            let fast = hamerly_lloyd(&points, &init.centers, &config, &exec).unwrap();
            assert_eq!(fast.labels, plain.labels, "seed {seed}");
            assert!(
                (fast.cost - plain.cost).abs() <= 1e-6 * (1.0 + plain.cost),
                "seed {seed}: {} vs {}",
                fast.cost,
                plain.cost
            );
            assert!(fast.converged);
        }
    }

    #[test]
    fn actually_prunes_distance_computations() {
        let points = mixture(16, 4_000, 9);
        let exec = Executor::sequential();
        let init = InitMethod::KMeansPlusPlus
            .run(&points, 16, 3, &exec)
            .unwrap();
        let result = hamerly_lloyd(&points, &init.centers, &LloydConfig::default(), &exec).unwrap();
        // Plain Lloyd would spend n·k per iteration.
        let plain_budget = 4_000u64 * 16 * result.iterations as u64;
        assert!(
            result.distance_computations < plain_budget / 2,
            "no pruning: {} vs plain {}",
            result.distance_computations,
            plain_budget
        );
    }

    #[test]
    fn identical_across_thread_counts() {
        let points = mixture(6, 900, 4);
        let init = InitMethod::KMeansPlusPlus
            .run(&points, 6, 1, &Executor::sequential())
            .unwrap();
        let run = |par: Parallelism| {
            let exec = Executor::new(par).with_shard_size(128);
            hamerly_lloyd(&points, &init.centers, &LloydConfig::default(), &exec).unwrap()
        };
        let reference = run(Parallelism::Sequential);
        for t in [2, 4] {
            let got = run(Parallelism::Threads(t));
            assert_eq!(got.labels, reference.labels);
            assert_eq!(got.centers, reference.centers);
            assert_eq!(got.iterations, reference.iterations);
        }
    }

    #[test]
    fn handles_empty_clusters() {
        // Duplicate seeds force an empty cluster on the first update.
        let points = mixture(4, 400, 7);
        let mut init = PointMatrix::new(points.dim());
        let row = points.row(0).to_vec();
        for _ in 0..3 {
            init.push(&row).unwrap();
        }
        init.push(points.row(1)).unwrap();
        let exec = Executor::sequential();
        let result = hamerly_lloyd(&points, &init, &LloydConfig::default(), &exec).unwrap();
        let mut counts = vec![0u32; 4];
        for &l in &result.labels {
            counts[l as usize] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 0),
            "empty cluster survived: {counts:?}"
        );
    }

    #[test]
    fn respects_iteration_cap() {
        let points = mixture(8, 1_000, 2);
        let init = InitMethod::Random
            .run(&points, 8, 5, &Executor::sequential())
            .unwrap();
        let config = LloydConfig {
            max_iterations: 2,
            tol: 0.0,
        };
        let result =
            hamerly_lloyd(&points, &init.centers, &config, &Executor::sequential()).unwrap();
        assert_eq!(result.iterations, 2);
        assert!(!result.converged);
    }

    #[test]
    fn k_equals_one_trivially_converges() {
        let points = mixture(2, 100, 3);
        let init = points.select(&[0]);
        let result = hamerly_lloyd(
            &points,
            &init,
            &LloydConfig::default(),
            &Executor::sequential(),
        )
        .unwrap();
        assert!(result.converged);
        assert!(result.labels.iter().all(|&l| l == 0));
        // Center is the global centroid.
        let centroid = points.centroid().unwrap();
        for (a, b) in result.centers.row(0).iter().zip(&centroid) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_invalid_inputs() {
        let points = mixture(2, 50, 1);
        let exec = Executor::sequential();
        let init = points.select(&[0]);
        assert!(hamerly_lloyd(
            &PointMatrix::new(points.dim()),
            &init,
            &LloydConfig::default(),
            &exec
        )
        .is_err());
        let wrong_dim = PointMatrix::from_flat(vec![0.0], 1).unwrap();
        assert!(hamerly_lloyd(&points, &wrong_dim, &LloydConfig::default(), &exec).is_err());
        let bad = LloydConfig {
            max_iterations: 0,
            tol: 0.0,
        };
        assert!(hamerly_lloyd(&points, &init, &bad, &exec).is_err());
    }

    #[test]
    fn two_nearest_orders_and_breaks_ties() {
        let centers = PointMatrix::from_flat(vec![0.0, 10.0, 10.0, 3.0], 1).unwrap();
        let (j, d1, d2) = two_nearest(&[1.0], &centers);
        assert_eq!(j, 0);
        assert!((d1 - 1.0).abs() < 1e-12);
        assert!((d2 - 2.0).abs() < 1e-12);
        // Tie between identical centers 1 and 2: lower index wins.
        let (j, _, _) = two_nearest(&[10.0], &centers);
        assert_eq!(j, 1);
        // Single center: second distance is infinite.
        let single = PointMatrix::from_flat(vec![5.0], 1).unwrap();
        let (_, _, d2) = two_nearest(&[0.0], &single);
        assert!(d2.is_infinite());
    }
}
