//! Error type for clustering operations.

use std::fmt;

/// Errors produced by initialization, Lloyd's iteration, or the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KMeansError {
    /// The input matrix has no points.
    EmptyInput,
    /// `k` is zero or exceeds the number of points.
    InvalidK {
        /// Requested number of clusters.
        k: usize,
        /// Number of points available.
        n: usize,
    },
    /// Query points do not match the model's dimensionality.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Provided dimensionality.
        got: usize,
    },
    /// A configuration value is out of range.
    InvalidConfig(String),
    /// The input contains a NaN or infinite coordinate.
    NonFiniteData {
        /// Index of the offending point.
        point: usize,
        /// Offending dimension within that point.
        dim: usize,
    },
    /// A chunked data source failed to deliver a block (I/O error,
    /// malformed block file, parse failure mid-stream).
    Data(String),
}

impl fmt::Display for KMeansError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KMeansError::EmptyInput => write!(f, "input contains no points"),
            KMeansError::InvalidK { k, n } => {
                write!(f, "invalid k={k} for {n} points (need 1 <= k <= n)")
            }
            KMeansError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            KMeansError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            KMeansError::NonFiniteData { point, dim } => {
                write!(f, "non-finite coordinate at point {point}, dimension {dim}")
            }
            KMeansError::Data(msg) => write!(f, "data source error: {msg}"),
        }
    }
}

impl std::error::Error for KMeansError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(KMeansError::EmptyInput.to_string().contains("no points"));
        let e = KMeansError::InvalidK { k: 10, n: 5 };
        assert!(e.to_string().contains("k=10"));
        let e = KMeansError::DimensionMismatch {
            expected: 3,
            got: 4,
        };
        assert!(e.to_string().contains("expected 3"));
        assert!(KMeansError::InvalidConfig("x".into())
            .to_string()
            .contains('x'));
        let e = KMeansError::NonFiniteData { point: 4, dim: 2 };
        assert!(e.to_string().contains("point 4"));
        assert!(KMeansError::Data("disk gone".into())
            .to_string()
            .contains("disk gone"));
    }
}
